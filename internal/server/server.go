package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/wire"
	"repro/lsmstore"
)

// Config configures a Server.
type Config struct {
	// DB is the store to serve. The server does not Open or Close it; the
	// caller owns its lifecycle.
	DB *lsmstore.DB
	// Addr is the TCP listen address (e.g. "127.0.0.1:4150"; required).
	Addr string
	// HTTPAddr is the observability sidecar's listen address, serving
	// GET /healthz and GET /stats. Empty disables the sidecar.
	HTTPAddr string
	// MaxInFlight bounds the requests a single connection may have
	// executing at once. When a client pipelines past it, the server
	// stops reading that connection until responses drain — backpressure
	// by TCP flow control. 0 means the default of 128.
	MaxInFlight int
	// MaxFrame caps accepted request frames (0 = wire.MaxFrame).
	MaxFrame int
	// MaxBatch caps how many concurrent single writes the coalescer
	// folds into one ApplyBatch call (0 = 256).
	MaxBatch int
	// Coalescers is the number of concurrent batch-apply drainers
	// (0 = 4). More than one lets a batch parked on its commit-group
	// fsync overlap with the next batch's engine work.
	Coalescers int
	// DisableCoalescing applies every single write individually instead
	// of grouping concurrent ones into batches.
	DisableCoalescing bool
	// SlowRequestThreshold is the server-side latency at or above which a
	// request lands in the slow-request ring served at /debug/slow.
	// 0 means the 100ms default; negative disables the slow log.
	SlowRequestThreshold time.Duration
	// SlowLogSize caps the slow-request ring (0 = 128 entries).
	SlowLogSize int
	// AdmissionBudget enables server-wide admission control: the total
	// weighted in-flight budget across every connection (see
	// internal/admission for the per-class weights). 0 disables admission
	// control — the only bound is then the per-connection MaxInFlight.
	AdmissionBudget int64
	// AdmissionQueue caps the admission FIFO wait queue (0 = 2×budget,
	// negative = no queue: over-budget requests shed immediately).
	AdmissionQueue int
	// AdmissionQueueDeadline bounds how long a request may wait queued
	// before it is shed (0 = 2ms).
	AdmissionQueueDeadline time.Duration
	// TenantRate is the per-tenant admission rate limit in requests per
	// second for requests carrying a tenant tag (0 = unlimited).
	TenantRate float64
	// TenantBurst is the tenant rate limiter's burst (0 = max(1, rate)).
	TenantBurst float64
	// LatencyTarget enables the load-coupled maintenance governor: while
	// the foreground get/upsert interval p99 exceeds the target, merge
	// dispatch is throttled (never below a hard rate floor — see
	// internal/admission's no-deadlock argument). 0 disables the
	// governor. Requires observability (the governor samples its
	// histograms), so DisableObservability turns it off too.
	LatencyTarget time.Duration
	// DisableObservability turns off the per-op latency histograms, the
	// request-stage tracing and the slow-request log. /metrics then
	// serves counters only.
	DisableObservability bool
	// EnablePprof registers net/http/pprof handlers on the HTTP sidecar
	// under /debug/pprof/.
	EnablePprof bool
}

const (
	defaultMaxInFlight   = 128
	defaultMaxBatch      = 256
	defaultCoalescers    = 4
	defaultSlowThreshold = 100 * time.Millisecond
)

// Server serves a DB over the wire protocol: one TCP listener, a
// reader/writer goroutine pair per connection, pipelined out-of-order
// responses, and an optional HTTP sidecar.
type Server struct {
	cfg      Config
	db       *lsmstore.DB
	counters *metrics.ServerCounters
	coal     *coalescer
	obs      *obs.Registry         // nil when observability is disabled
	slow     *obs.SlowLog          // nil when the slow log is disabled
	adm      *admission.Controller // nil when admission control is disabled
	gov      *admission.Governor   // nil when the latency governor is disabled

	ln       net.Listener
	acceptWg sync.WaitGroup
	connWg   sync.WaitGroup

	mu       sync.Mutex
	conns    map[*conn]struct{}
	started  bool
	stopping bool
	stopped  chan struct{} // closed when a stop (Shutdown or Kill) completes

	http httpSidecar
}

// New builds a server for the config. Call Start to begin serving.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.Addr == "" {
		return nil, errors.New("server: Config.Addr is required")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.MaxFrame
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.Coalescers <= 0 {
		cfg.Coalescers = defaultCoalescers
	}
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		counters: &metrics.ServerCounters{},
		conns:    make(map[*conn]struct{}),
		stopped:  make(chan struct{}),
	}
	if !cfg.DisableObservability {
		s.obs = obs.NewRegistry()
		if cfg.SlowRequestThreshold >= 0 {
			thr := cfg.SlowRequestThreshold
			if thr == 0 {
				thr = defaultSlowThreshold
			}
			s.slow = obs.NewSlowLog(cfg.SlowLogSize, thr)
		}
	}
	if !cfg.DisableCoalescing {
		s.coal = newCoalescer(cfg.DB, s.counters, cfg.MaxBatch, cfg.Coalescers)
	}
	if cfg.AdmissionBudget > 0 {
		s.adm = admission.New(admission.Config{
			Budget:        cfg.AdmissionBudget,
			MaxQueue:      cfg.AdmissionQueue,
			QueueDeadline: cfg.AdmissionQueueDeadline,
			TenantRate:    cfg.TenantRate,
			TenantBurst:   cfg.TenantBurst,
		})
	}
	if cfg.LatencyTarget > 0 && s.obs != nil {
		s.gov = admission.NewGovernor(admission.GovernorConfig{Target: cfg.LatencyTarget}, s.obs)
	}
	return s, nil
}

// Counters exposes the server's event counters (also served by /stats).
func (s *Server) Counters() *metrics.ServerCounters { return s.counters }

// Observability exposes the per-op and per-stage latency registry (nil
// when Config.DisableObservability is set).
func (s *Server) Observability() *obs.Registry { return s.obs }

// SlowLog exposes the slow-request ring (nil when disabled).
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// Admission exposes the admission controller (nil when disabled).
func (s *Server) Admission() *admission.Controller { return s.adm }

// Governor exposes the maintenance governor (nil when disabled).
func (s *Server) Governor() *admission.Governor { return s.gov }

// Start binds the listeners and begins serving in the background.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if s.cfg.HTTPAddr != "" {
		if err := s.http.start(s.cfg.HTTPAddr, s); err != nil {
			//lsm:allow-discard unwinding a failed startup; the sidecar error is the one worth returning
			ln.Close()
			return err
		}
	}
	s.ln = ln
	s.started = true
	if s.coal != nil {
		s.coal.start()
	}
	if s.gov != nil {
		s.db.SetMergeGate(s.gov.Gate())
		s.gov.Start()
	}
	s.acceptWg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr returns the TCP listener address (nil before Start).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// HTTPAddr returns the sidecar's listener address (nil when disabled or
// before Start).
func (s *Server) HTTPAddr() net.Addr { return s.http.addr() }

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.acceptWg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown/Kill
		}
		c := &conn{
			srv: s,
			nc:  nc,
			out: make(chan outFrame, s.cfg.MaxInFlight),
			sem: make(chan struct{}, s.cfg.MaxInFlight),
		}
		s.mu.Lock()
		if s.stopping {
			s.mu.Unlock()
			//lsm:allow-discard refusing a connection that raced the shutdown; its close error is of no use
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.counters.Connections.Add(1)
		s.counters.ActiveConns.Add(1)
		s.connWg.Add(1)
		go c.serve()
	}
}

func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.counters.ActiveConns.Add(-1)
}

func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stopping
}

// beginStop flips the server into stopping state. It reports false — and
// waits for the in-progress stop — when another stop already ran.
func (s *Server) beginStop() bool {
	s.mu.Lock()
	if !s.started || s.stopping {
		stopped := s.stopped
		started := s.started
		s.mu.Unlock()
		if started {
			<-stopped
		}
		return false
	}
	s.stopping = true
	s.mu.Unlock()
	return true
}

// Shutdown gracefully drains the server: it stops accepting connections
// and reading new requests, waits for every in-flight request to finish
// and its response to flush, then closes the connections, the listeners,
// and the write coalescer. If ctx expires first, remaining connections
// are closed abruptly; Shutdown still waits for their handlers before
// returning ctx's error. The DB is left open — the caller owns it.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.beginStop() {
		return nil
	}
	defer close(s.stopped)
	//lsm:allow-discard teardown: the listener is being discarded either way
	s.ln.Close()
	s.http.stop()
	s.stopOverload()
	// Unblock every reader: the deadline fails the blocking ReadFrame,
	// and the drain flag stops readers that raced past it.
	s.mu.Lock()
	for c := range s.conns {
		//lsm:allow-discard the deadline is a wake-up signal; it can only fail on a conn that is already dead, which is the goal
		c.nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.acceptWg.Wait()
		s.connWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			//lsm:allow-discard drain budget expired; connections are cut, their close errors are noise
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if s.coal != nil {
		s.coal.stop()
	}
	return err
}

// Kill stops the server abruptly: listeners and connections close
// immediately, responses in flight are dropped, nothing drains. The DB is
// left untouched, so tests can treat a killed server's directory exactly
// like a crashed process image. Handlers already executing finish against
// the live DB before Kill returns.
func (s *Server) Kill() {
	if !s.beginStop() {
		return
	}
	defer close(s.stopped)
	//lsm:allow-discard Kill is the ungraceful path; everything is discarded
	s.ln.Close()
	s.http.stop()
	s.stopOverload()
	s.mu.Lock()
	for c := range s.conns {
		//lsm:allow-discard Kill is the ungraceful path; everything is discarded
		c.nc.Close()
	}
	s.mu.Unlock()
	s.acceptWg.Wait()
	s.connWg.Wait()
	if s.coal != nil {
		s.coal.stop()
	}
}

// stopOverload tears down the overload-protection layer on either stop
// path: queued admission waiters shed with ErrClosed (the client sees
// CodeShuttingDown), the governor stops, and the merge gate opens and
// detaches so a draining store is never slowed by a stale throttle.
func (s *Server) stopOverload() {
	if s.adm != nil {
		s.adm.Close()
	}
	if s.gov != nil {
		s.gov.Stop()
		s.db.SetMergeGate(nil)
	}
}

// frameBufPool recycles response frame encode buffers: a frame lives from
// the handler's send to the writer's flush, after which the buffer goes
// back to the pool instead of the garbage collector — the per-response
// allocation was measurable on the pipelined hot path. Buffers grown past
// maxPooledFrame by one big query/scan response are dropped rather than
// pinned for every small response that follows.
const maxPooledFrame = 64 << 10

var frameBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// reqBufPool recycles request frame buffers. Each request reads its frame
// into a pooled buffer and decodes it in place (wire.DecodeRequestInPlace),
// so a GET's key never leaves the receive buffer; the handler returns the
// buffer once the request is done. Write operations clone the fields the
// engine retains (see handle) before the buffer goes back.
var reqBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// putReqBuf returns a request buffer to the pool unless one oversized
// frame grew it past the cap worth pinning.
func putReqBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledFrame {
		reqBufPool.Put(bp)
	}
}

// trace accumulates one request's stage timings as it moves through the
// pipeline: decode on the read goroutine, coalesce-wait and engine on
// the handler goroutine, encode at send, write on the writer goroutine.
// A zero trace (start.IsZero()) marks an untraced frame and records
// nothing. It travels by value — tracing allocates nothing per request.
type trace struct {
	op     obs.Op
	id     uint64
	start  time.Time // frame fully received
	enq    time.Time // response handed to the writer
	decode time.Duration
	wait   time.Duration // coalescer queue wait (writes only)
	engine time.Duration
	encode time.Duration
}

// outFrame is one encoded response frame moving to the writer, with its
// request's trace riding along so the write stage and the total can be
// recorded once the frame reaches the socket.
type outFrame struct {
	bp *[]byte
	tr trace
}

// conn is one client connection: a reader goroutine decoding and
// dispatching requests, per-request handler goroutines (bounded by sem),
// and a writer goroutine serializing response frames.
type conn struct {
	srv   *Server
	nc    net.Conn
	out   chan outFrame // pooled encoded response frames
	sem   chan struct{} // in-flight request tokens
	reqWg sync.WaitGroup
}

func (c *conn) serve() {
	defer c.srv.connWg.Done()
	defer c.srv.removeConn(c)
	writerDone := make(chan struct{})
	go c.writeLoop(writerDone)
	c.readLoop()
	// All accepted requests finish and enqueue their responses before the
	// writer is told to flush out and exit.
	c.reqWg.Wait()
	close(c.out)
	<-writerDone
	//lsm:allow-discard the conn is done; writeLoop already surfaced any write failure by failing the stream
	c.nc.Close()
}

func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	traced := c.srv.obs != nil
	for {
		if c.srv.draining() {
			return
		}
		bp := reqBufPool.Get().(*[]byte)
		frame, err := wire.ReadFrame(br, *bp, c.srv.cfg.MaxFrame)
		if err != nil {
			putReqBuf(bp)
			return // EOF, peer reset, shutdown deadline, oversized frame
		}
		var start time.Time
		if traced {
			start = time.Now()
		}
		*bp = frame[:cap(frame)]
		c.srv.counters.Requests.Add(1)
		// Decode in place: the request's byte fields alias the pooled
		// buffer, which stays with this request until its handler is done.
		req, err := wire.DecodeRequestInPlace(frame)
		if err != nil {
			// The stream is unframed garbage from here on; answer with a
			// zero-ID error so the client can log it, then hang up.
			putReqBuf(bp)
			c.srv.counters.Errors.Add(1)
			c.send(wire.ErrorResponse(0, wire.CodeBadRequest, err.Error()), trace{})
			return
		}
		var tr trace
		if traced {
			tr = trace{op: obsOpOf(req.Op), id: req.ID, start: start, decode: time.Since(start)}
		}
		// Backpressure: past MaxInFlight outstanding requests this blocks,
		// which stops reading the socket and lets TCP flow control push
		// back on the client.
		c.sem <- struct{}{}
		c.reqWg.Add(1)
		go func(req wire.Request, bp *[]byte, tr trace) { //lsm:poolleak-ok the goroutine is the request's owner; it returns the buffer via putReqBuf when done
			defer c.reqWg.Done()
			defer func() { <-c.sem }()
			defer putReqBuf(bp)
			// Admission control: data-plane ops pass through the global
			// weighted budget; a shed request fails fast without ever
			// touching the engine. Control-plane ops (PING, STATS, FLUSH)
			// bypass it — health checks must work on an overloaded server.
			if adm := c.srv.adm; adm != nil {
				if class, ok := admissionClassOf(req.Op); ok {
					release, err := adm.Acquire(class, req.Tenant)
					if err != nil {
						c.srv.counters.Errors.Add(1)
						c.send(admissionError(req.ID, err), tr)
						return
					}
					defer release()
				}
			}
			if req.Op == wire.OpGet {
				// GET fast path: serve a reference into engine-owned
				// memory and encode it straight into the pooled response
				// frame — no value copy, no intermediate Response.
				var engStart time.Time
				if traced {
					engStart = time.Now()
				}
				val, found, err := c.srv.db.GetRef(req.Key)
				if traced {
					tr.engine = time.Since(engStart)
				}
				if err != nil {
					c.srv.counters.Errors.Add(1)
					c.send(c.srv.errorResponse(req.ID, err), tr)
					return
				}
				c.sendValue(req.ID, found, val, tr)
				return
			}
			var engStart time.Time
			if traced {
				engStart = time.Now()
			}
			resp := c.srv.handle(req, &tr)
			if traced {
				// The coalescer wait is part of the handle call but not of
				// the engine's work; attribute it to its own stage.
				tr.engine = time.Since(engStart) - tr.wait
			}
			if resp.Kind == wire.KindError {
				c.srv.counters.Errors.Add(1)
			}
			c.send(resp, tr)
		}(req, bp, tr)
	}
}

func (c *conn) send(resp wire.Response, tr trace) {
	bp := frameBufPool.Get().(*[]byte)
	if tr.start.IsZero() {
		*bp = wire.AppendResponse((*bp)[:0], resp)
	} else {
		encStart := time.Now()
		*bp = wire.AppendResponse((*bp)[:0], resp)
		tr.encode = time.Since(encStart)
		tr.enq = time.Now()
	}
	c.out <- outFrame{bp: bp, tr: tr} //lsm:poolleak-ok ownership of the frame moves to writeLoop, which returns it with Put after writing
}

// sendValue encodes a KindValue response directly from an engine-owned
// value reference (wire.AppendValueResponse copies the bytes into the
// pooled frame, so the reference is released as soon as this returns).
func (c *conn) sendValue(id uint64, found bool, value []byte, tr trace) {
	bp := frameBufPool.Get().(*[]byte)
	if tr.start.IsZero() {
		*bp = wire.AppendValueResponse((*bp)[:0], id, found, value)
	} else {
		encStart := time.Now()
		*bp = wire.AppendValueResponse((*bp)[:0], id, found, value)
		tr.encode = time.Since(encStart)
		tr.enq = time.Now()
	}
	c.out <- outFrame{bp: bp, tr: tr} //lsm:poolleak-ok ownership of the frame moves to writeLoop, which returns it with Put after writing
}

func (c *conn) writeLoop(done chan struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	failed := false
	// A write failure poisons the whole response stream (the peer cannot
	// resynchronize frames), so close the socket immediately: the reader
	// stops accepting requests and the client observes the break instead
	// of waiting on responses that will never come. The loop keeps
	// draining so handlers never block on a dead connection.
	fail := func() {
		failed = true
		//lsm:allow-discard the close IS the error report: it breaks the stream so the peer observes the failure
		c.nc.Close()
	}
	for of := range c.out {
		bp := of.bp
		if !failed {
			if err := wire.WriteFrame(bw, *bp); err != nil {
				fail()
			} else if len(c.out) == 0 {
				// Flush only when no more responses are queued: consecutive
				// pipelined responses share flushes.
				if err := bw.Flush(); err != nil {
					fail()
				}
			}
		}
		if !of.tr.start.IsZero() {
			c.srv.recordRequest(of.tr)
		}
		if cap(*bp) <= maxPooledFrame {
			frameBufPool.Put(bp) // WriteFrame copied the bytes into bw
		}
	}
	if !failed {
		// The connection is closing right after this flush, but a failure
		// still means the peer lost responses mid-frame: poison the socket
		// so the client observes a break, not a clean shutdown.
		if err := bw.Flush(); err != nil {
			fail()
		}
	}
}

// handle executes one request against the DB and builds its response.
//
// Requests arrive decoded in place: their byte fields alias a pooled
// receive buffer that is reused once the request finishes. Read operations
// may use the fields as-is (the engine does not retain them), but write
// operations must clone what the engine keeps — keys and records live on
// in the memtable and WAL long after the buffer is recycled.
func (s *Server) handle(req wire.Request, tr *trace) wire.Response {
	switch req.Op {
	case wire.OpPing:
		return wire.Response{ID: req.ID, Kind: wire.KindOK}

	case wire.OpGet:
		// Normally intercepted by readLoop's zero-copy fast path; kept for
		// completeness, sharing its engine path.
		val, found, err := s.db.GetRef(req.Key)
		if err != nil {
			return s.errorResponse(req.ID, err)
		}
		return wire.Response{ID: req.ID, Kind: wire.KindValue, Found: found, Value: val}

	case wire.OpUpsert:
		if _, err := s.write(lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: bytes.Clone(req.Key), Record: bytes.Clone(req.Value)}, tr); err != nil {
			return s.errorResponse(req.ID, err)
		}
		return wire.Response{ID: req.ID, Kind: wire.KindOK}

	case wire.OpInsert:
		applied, err := s.write(lsmstore.Mutation{Op: lsmstore.OpInsert, PK: bytes.Clone(req.Key), Record: bytes.Clone(req.Value)}, tr)
		if err != nil {
			return s.errorResponse(req.ID, err)
		}
		return wire.Response{ID: req.ID, Kind: wire.KindApplied, Applied: applied}

	case wire.OpDelete:
		applied, err := s.write(lsmstore.Mutation{Op: lsmstore.OpDelete, PK: bytes.Clone(req.Key)}, tr)
		if err != nil {
			return s.errorResponse(req.ID, err)
		}
		return wire.Response{ID: req.ID, Kind: wire.KindApplied, Applied: applied}

	case wire.OpApplyBatch:
		muts := make([]lsmstore.Mutation, len(req.Muts))
		for i, m := range req.Muts {
			var op lsmstore.Op
			switch m.Op {
			case wire.MutUpsert:
				op = lsmstore.OpUpsert
			case wire.MutInsert:
				op = lsmstore.OpInsert
			case wire.MutDelete:
				op = lsmstore.OpDelete
			default:
				return wire.ErrorResponse(req.ID, wire.CodeBadRequest,
					fmt.Sprintf("unknown mutation op %d", m.Op))
			}
			muts[i] = lsmstore.Mutation{Op: op, PK: bytes.Clone(m.PK), Record: bytes.Clone(m.Record)}
		}
		applied, err := s.db.ApplyBatchResults(muts)
		if err != nil {
			return s.errorResponse(req.ID, err)
		}
		return wire.Response{ID: req.ID, Kind: wire.KindBatch, AppliedBatch: applied}

	case wire.OpSecondaryQuery:
		validation := lsmstore.ValidationMethod(req.Validation)
		if !validation.Valid() {
			return wire.ErrorResponse(req.ID, wire.CodeBadRequest,
				fmt.Sprintf("validation method %d out of range", req.Validation))
		}
		if req.Limit < 0 {
			return wire.ErrorResponse(req.ID, wire.CodeBadRequest, "negative limit")
		}
		res, err := s.db.SecondaryQuery(req.Index, req.Lo, req.Hi, lsmstore.QueryOptions{
			Validation: validation,
			IndexOnly:  req.IndexOnly,
			Limit:      int(req.Limit),
		})
		if err != nil {
			return s.errorResponse(req.ID, err)
		}
		resp := wire.Response{ID: req.ID, Kind: wire.KindQuery, Keys: res.Keys}
		for _, r := range res.Records {
			resp.Records = append(resp.Records, wire.Record{PK: r.PK, Value: r.Value})
		}
		return resp

	case wire.OpFilterScan:
		if req.Limit < 0 {
			return wire.ErrorResponse(req.ID, wire.CodeBadRequest, "negative limit")
		}
		var records []wire.Record
		err := s.db.FilterScan(req.FilterLo, req.FilterHi, func(pk, record []byte) {
			if req.Limit > 0 && int64(len(records)) >= req.Limit {
				return
			}
			records = append(records, wire.Record{
				PK:    append([]byte(nil), pk...),
				Value: append([]byte(nil), record...),
			})
		})
		if err != nil {
			return s.errorResponse(req.ID, err)
		}
		return wire.Response{ID: req.ID, Kind: wire.KindScan, Records: records}

	case wire.OpStats:
		blob, err := json.Marshal(s.db.Stats())
		if err != nil {
			return s.errorResponse(req.ID, err)
		}
		return wire.Response{ID: req.ID, Kind: wire.KindStats, Stats: blob}

	case wire.OpFlush:
		if err := s.db.Flush(); err != nil {
			return s.errorResponse(req.ID, err)
		}
		return wire.Response{ID: req.ID, Kind: wire.KindOK}
	}
	return wire.ErrorResponse(req.ID, wire.CodeBadRequest, fmt.Sprintf("unknown op %d", req.Op))
}

// write applies one mutation, through the coalescer when enabled. The
// time the mutation spent queued before a drainer picked it up lands in
// tr.wait.
func (s *Server) write(m lsmstore.Mutation, tr *trace) (bool, error) {
	if s.coal != nil {
		applied, wait, err := s.coal.apply(m, !tr.start.IsZero())
		tr.wait = wait
		return applied, err
	}
	applied, err := s.db.ApplyBatchResults([]lsmstore.Mutation{m})
	if err != nil {
		return false, err
	}
	return applied[0], nil
}

// admissionClassOf maps a wire op onto its admission class. Control-plane
// ops (PING, STATS, FLUSH) report ok=false: they bypass admission.
func admissionClassOf(op wire.Op) (admission.Class, bool) {
	switch op {
	case wire.OpGet:
		return admission.ClassRead, true
	case wire.OpUpsert, wire.OpInsert, wire.OpDelete:
		return admission.ClassWrite, true
	case wire.OpApplyBatch:
		return admission.ClassBatch, true
	case wire.OpSecondaryQuery:
		return admission.ClassQuery, true
	case wire.OpFilterScan:
		return admission.ClassScan, true
	}
	return 0, false
}

// admissionError maps an admission failure onto its typed wire error.
func admissionError(id uint64, err error) wire.Response {
	code := wire.CodeOverloaded
	switch {
	case errors.Is(err, admission.ErrRateLimited):
		code = wire.CodeRetryLater
	case errors.Is(err, admission.ErrClosed):
		code = wire.CodeShuttingDown
	}
	return wire.ErrorResponse(id, code, err.Error())
}

// obsOpOf maps a wire op onto its latency-histogram class.
func obsOpOf(op wire.Op) obs.Op {
	switch op {
	case wire.OpGet:
		return obs.OpGet
	case wire.OpUpsert:
		return obs.OpUpsert
	case wire.OpInsert:
		return obs.OpInsert
	case wire.OpDelete:
		return obs.OpDelete
	case wire.OpApplyBatch:
		return obs.OpApplyBatch
	case wire.OpSecondaryQuery:
		return obs.OpSecondaryQuery
	case wire.OpFilterScan:
		return obs.OpFilterScan
	default:
		return obs.OpOther
	}
}

// recordRequest folds one completed request into the histograms and,
// past the threshold, the slow-request ring. Called from writeLoop after
// the response frame hit the socket, so the write stage and the total
// are real.
func (s *Server) recordRequest(tr trace) {
	now := time.Now()
	total := now.Sub(tr.start)
	write := now.Sub(tr.enq)
	s.obs.RecordOp(tr.op, total)
	s.obs.RecordStage(obs.StageDecode, tr.decode)
	if tr.wait > 0 {
		s.obs.RecordStage(obs.StageCoalesce, tr.wait)
	}
	s.obs.RecordStage(obs.StageEngine, tr.engine)
	s.obs.RecordStage(obs.StageEncode, tr.encode)
	s.obs.RecordStage(obs.StageWrite, write)
	if s.slow != nil && total >= s.slow.Threshold() {
		s.counters.SlowRequests.Add(1)
		s.slow.Add(obs.SlowEntry{
			Op:             tr.op.String(),
			ReqID:          tr.id,
			TotalMicros:    total.Microseconds(),
			DecodeMicros:   tr.decode.Microseconds(),
			CoalesceMicros: tr.wait.Microseconds(),
			EngineMicros:   tr.engine.Microseconds(),
			EncodeMicros:   tr.encode.Microseconds(),
			WriteMicros:    write.Microseconds(),
		})
	}
}

// errorResponse maps engine errors onto typed wire error codes.
func (s *Server) errorResponse(id uint64, err error) wire.Response {
	code := wire.CodeInternal
	switch {
	case errors.Is(err, lsmstore.ErrClosed):
		code = wire.CodeClosed
	case errors.Is(err, lsmstore.ErrUnknownIndex):
		code = wire.CodeUnknownIndex
	}
	return wire.ErrorResponse(id, code, err.Error())
}
