package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/lsmstore"
)

// doRequests drives a representative op mix through the wire path so every
// latency class has observations.
func doRequests(t *testing.T, srv *server.Server) {
	t.Helper()
	c := dial(t, srv, 1)
	for i := uint64(0); i < 8; i++ {
		pk, rec := tweet(i)
		if err := c.Upsert(pk, rec); err != nil {
			t.Fatal(err)
		}
	}
	pk, _ := tweet(3)
	if _, found, err := c.Get(pk); err != nil || !found {
		t.Fatalf("get: found=%v err=%v", found, err)
	}
	if _, err := c.SecondaryQuery("user", nil, nil, lsmstore.QueryOptions{
		Validation: lsmstore.TimestampValidation,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestObservabilityHistograms(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
	})
	doRequests(t, srv)

	ops := srv.Observability().OpSnapshots()
	if ops["upsert"].Count != 8 {
		t.Fatalf("upsert count = %d, want 8 (%v)", ops["upsert"].Count, ops)
	}
	if ops["get"].Count != 1 || ops["secondary_query"].Count != 1 {
		t.Fatalf("op snapshots = %v", ops)
	}
	if s := ops["upsert"]; s.SumNanos <= 0 || s.MaxNanos <= 0 {
		t.Fatalf("upsert histogram has no time: %+v", s)
	}

	stages := srv.Observability().StageSnapshots()
	total := int64(10) // 8 upserts + 1 get + 1 query
	for _, st := range []string{"decode", "engine", "encode", "write"} {
		if stages[st].Count != total {
			t.Fatalf("stage %q count = %d, want %d (%v)", st, stages[st].Count, total, stages)
		}
	}
	// Only the coalesced writes pass through the coalesce-wait stage.
	if got := stages["coalesce_wait"].Count; got != 8 {
		t.Fatalf("coalesce_wait count = %d, want 8", got)
	}

	// The /stats payload carries both the digests and the raw buckets.
	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload server.StatsPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Latency["upsert"].Count != 8 || payload.Latency["upsert"].MaxMicros < 0 {
		t.Fatalf("/stats latency = %+v", payload.Latency)
	}
	if payload.LatencyHist["upsert"].Count != 8 || len(payload.LatencyHist["upsert"].Buckets) == 0 {
		t.Fatalf("/stats latency hist = %+v", payload.LatencyHist)
	}
	if payload.Stages["engine"].Count != total {
		t.Fatalf("/stats stages = %+v", payload.Stages)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
	})
	doRequests(t, srv)

	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	for _, want := range []string{
		"# TYPE lsm_requests_total counter",
		"# TYPE lsm_request_duration_seconds histogram",
		`lsm_request_duration_seconds_bucket{op="upsert",le="+Inf"} 8`,
		`lsm_request_duration_seconds_count{op="get"} 1`,
		`lsm_request_stage_duration_seconds_bucket{stage="engine",le="+Inf"} 10`,
		"lsm_engine_ingested_total 8",
		"lsm_maintenance_flushes_total",
		"lsm_active_connections",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDebugSlowEndpoint(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
		cfg.SlowRequestThreshold = time.Nanosecond // everything is slow
		cfg.SlowLogSize = 4
	})
	doRequests(t, srv)

	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p struct {
		ThresholdMillis int64 `json:"threshold_ms"`
		Total           int64 `json:"total"`
		Entries         []struct {
			Op          string `json:"op"`
			TotalMicros int64  `json:"total_us"`
		} `json:"entries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Total != 10 {
		t.Fatalf("slow total = %d, want 10", p.Total)
	}
	if len(p.Entries) != 4 { // ring capped at SlowLogSize
		t.Fatalf("slow entries = %d, want 4", len(p.Entries))
	}
	for _, e := range p.Entries {
		if e.Op == "" || e.TotalMicros < 0 {
			t.Fatalf("bad slow entry: %+v", e)
		}
	}
	if got := srv.Counters().SlowRequests.Load(); got != 10 {
		t.Fatalf("SlowRequests counter = %d, want 10", got)
	}
}

func TestDebugMaintenanceEndpoint(t *testing.T) {
	opts := storeOptions()
	opts.MaintenanceWorkers = 2
	opts.MemoryBudget = 16 << 10
	srv, _ := startServer(t, opts, func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
	})
	c := dial(t, srv, 1)
	for i := uint64(0); i < 400; i++ {
		pk, rec := tweet(i)
		if err := c.Upsert(pk, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/debug/maintenance")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var p struct {
		Summary struct {
			Flushes    int64 `json:"flushes"`
			FlushNanos int64 `json:"flush_ns"`
			FlushBytes int64 `json:"flush_bytes"`
		} `json:"summary"`
		Pool struct {
			Workers int `json:"workers"`
		} `json:"pool"`
		Shards []struct {
			Shard int `json:"shard"`
		} `json:"shards"`
		Events []struct {
			Kind           string `json:"kind"`
			DurationMicros int64  `json:"duration_us"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Summary.Flushes < 1 || p.Summary.FlushBytes <= 0 {
		t.Fatalf("maintenance summary = %+v", p.Summary)
	}
	if p.Pool.Workers != 2 {
		t.Fatalf("pool workers = %d, want 2", p.Pool.Workers)
	}
	if len(p.Shards) != 1 || p.Shards[0].Shard != 0 {
		t.Fatalf("shards = %+v", p.Shards)
	}
	if len(p.Events) == 0 || p.Events[0].Kind == "" {
		t.Fatalf("events = %+v", p.Events)
	}
}

func TestPprofEndpointOptIn(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
		cfg.EnablePprof = true
	})
	base := "http://" + srv.HTTPAddr().String()
	resp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/pprof/cmdline = %d, %d bytes", resp.StatusCode, len(body))
	}

	// Off by default: the handler must not be registered.
	srv2, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
	})
	resp, err = http.Get("http://" + srv2.HTTPAddr().String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without opt-in = %d, want 404", resp.StatusCode)
	}
}

func TestDisableObservability(t *testing.T) {
	srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
		cfg.HTTPAddr = "127.0.0.1:0"
		cfg.DisableObservability = true
	})
	doRequests(t, srv)
	if srv.Observability() != nil || srv.SlowLog() != nil {
		t.Fatal("observability not disabled")
	}
	base := "http://" + srv.HTTPAddr().String()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var payload server.StatsPayload
	err = json.NewDecoder(resp.Body).Decode(&payload)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if payload.Latency != nil || payload.LatencyHist != nil {
		t.Fatalf("/stats carries histograms while disabled: %+v", payload.Latency)
	}
	// Counters still serve.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "lsm_requests_total") {
		t.Fatal("/metrics lost counters while observability disabled")
	}
	if strings.Contains(string(raw), "lsm_request_duration_seconds") {
		t.Fatal("/metrics serves request histograms while disabled")
	}
}

// TestObsOverheadSmoke proves the tracing pipeline costs at most ~5%
// throughput: the same GET workload runs against a traced and an untraced
// server, best-of-three each. Gated behind LSMSTORE_BENCH_SMOKE=1 — it is
// a timing assertion, meaningful only on a quiet machine (CI runs it as a
// dedicated step).
func TestObsOverheadSmoke(t *testing.T) {
	if os.Getenv("LSMSTORE_BENCH_SMOKE") == "" {
		t.Skip("set LSMSTORE_BENCH_SMOKE=1 to run the overhead smoke test")
	}
	const (
		keys    = 1024
		ops     = 30000
		workers = 4
		runs    = 3
	)
	measure := func(disable bool) float64 {
		srv, _ := startServer(t, storeOptions(), func(cfg *server.Config) {
			cfg.DisableObservability = disable
		})
		c := dial(t, srv, 2)
		for i := uint64(0); i < keys; i++ {
			pk, rec := tweet(i)
			if err := c.Upsert(pk, rec); err != nil {
				t.Fatal(err)
			}
		}
		best := 0.0
		for r := 0; r < runs; r++ {
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < ops/workers; i++ {
						pk, _ := tweet(uint64((i*workers + w) % keys))
						if _, _, err := c.Get(pk); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			if tput := float64(ops) / time.Since(start).Seconds(); tput > best {
				best = tput
			}
		}
		return best
	}
	traced := measure(false)
	untraced := measure(true)
	ratio := traced / untraced
	t.Logf("traced %.0f ops/s, untraced %.0f ops/s, ratio %.3f", traced, untraced, ratio)
	if ratio < 0.95 {
		t.Fatalf("observability costs %.1f%% throughput, budget is 5%%", (1-ratio)*100)
	}
	fmt.Println("OBS_OVERHEAD_RATIO", ratio)
}
