package server

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/lsmstore"
)

// blockingApplier lets a test observe each batch as it starts (entered)
// and hold it inside ApplyBatchResults (gate), so writes submitted
// meanwhile must land in a following batch together.
type blockingApplier struct {
	mu      sync.Mutex
	batches [][]lsmstore.Mutation
	entered chan int      // receives len(muts) as each batch begins
	gate    chan struct{} // each receive releases one batch
	err     error
	// partialOK, with err set, mimics a sharded partial failure: entries
	// whose PK's first byte is even report applied=true alongside the
	// error (their shard applied them before another shard failed).
	partialOK bool
}

func (a *blockingApplier) ApplyBatchResults(muts []lsmstore.Mutation) ([]bool, error) {
	if a.entered != nil {
		a.entered <- len(muts)
	}
	if a.gate != nil {
		<-a.gate
	}
	a.mu.Lock()
	a.batches = append(a.batches, append([]lsmstore.Mutation(nil), muts...))
	a.mu.Unlock()
	if a.err != nil {
		if !a.partialOK {
			return nil, a.err
		}
		applied := make([]bool, len(muts))
		for i, m := range muts {
			applied[i] = len(m.PK) > 0 && m.PK[0]%2 == 0
		}
		return applied, a.err
	}
	applied := make([]bool, len(muts))
	for i, m := range muts {
		applied[i] = m.Op != lsmstore.OpDelete // deletes "miss" in this fake
	}
	return applied, nil
}

func (a *blockingApplier) batchSizes() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	sizes := make([]int, len(a.batches))
	for i, b := range a.batches {
		sizes[i] = len(b)
	}
	return sizes
}

// waitQueued blocks until n writes sit in the coalescer's queue.
func waitQueued(t *testing.T, c *coalescer, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(c.ch) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d writes queued", len(c.ch), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescerOverlapsBatches: with more than one drainer, a batch held
// inside the engine (e.g. parked on its commit-group fsync) must not stall
// the write path — a second batch enters the applier while the first is
// still in flight.
func TestCoalescerOverlapsBatches(t *testing.T) {
	applier := &blockingApplier{entered: make(chan int), gate: make(chan struct{})}
	c := newCoalescer(applier, nil, 16, 2)
	c.start()
	results := make(chan error, 2)
	submit := func(i int) {
		go func() {
			_, _, err := c.apply(lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: []byte{byte(i)}}, false)
			results <- err
		}()
	}
	// Submit the second write only after the first batch is already held
	// inside the applier, so it cannot be folded into that batch — it must
	// enter on the second drainer WHILE the first batch is still in flight,
	// which is exactly the overlap being pinned.
	submit(0)
	<-applier.entered
	submit(1)
	<-applier.entered
	applier.gate <- struct{}{}
	applier.gate <- struct{}{}
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	c.stop()
}

// TestCoalescerGroupsConcurrentWrites pins the grouping contract (with a
// single drainer, so batch formation is deterministic): writes arriving
// while a batch is applying are folded into one following batch, and each
// write still gets its own applied result.
func TestCoalescerGroupsConcurrentWrites(t *testing.T) {
	applier := &blockingApplier{entered: make(chan int), gate: make(chan struct{})}
	counters := &metrics.ServerCounters{}
	c := newCoalescer(applier, counters, 256, 1)
	c.start()

	// The leader write occupies the apply goroutine inside its batch.
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.apply(lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: []byte("leader")}, false)
		leaderDone <- err
	}()
	if n := <-applier.entered; n != 1 {
		t.Fatalf("leader batch size = %d, want 1", n)
	}

	// Five writes pile up while the leader batch is held open.
	const followers = 5
	var wg sync.WaitGroup
	results := make([]bool, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			op := lsmstore.OpUpsert
			if i == 0 {
				op = lsmstore.OpDelete // must come back applied=false
			}
			ok, _, err := c.apply(lsmstore.Mutation{Op: op, PK: []byte{byte(i)}}, false)
			if err != nil {
				t.Error(err)
			}
			results[i] = ok
		}(i)
	}
	waitQueued(t, c, followers)
	applier.gate <- struct{}{} // release the leader batch
	if n := <-applier.entered; n != followers {
		t.Fatalf("follower batch size = %d, want %d", n, followers)
	}
	applier.gate <- struct{}{} // release the follower batch
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	sizes := applier.batchSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != followers {
		t.Fatalf("batch sizes = %v, want [1 %d]", sizes, followers)
	}
	if results[0] {
		t.Fatal("delete in batch reported applied=true")
	}
	for i := 1; i < followers; i++ {
		if !results[i] {
			t.Fatalf("upsert %d in batch reported applied=false", i)
		}
	}
	if got := counters.CoalescedBatches.Load(); got != 2 {
		t.Fatalf("CoalescedBatches = %d, want 2", got)
	}
	if got := counters.CoalescedWrites.Load(); got != 1+followers {
		t.Fatalf("CoalescedWrites = %d, want %d", got, 1+followers)
	}
	c.stop()
}

// TestCoalescerPropagatesErrors: a failed batch fails every write in it.
func TestCoalescerPropagatesErrors(t *testing.T) {
	boom := errors.New("disk on fire")
	applier := &blockingApplier{err: boom}
	c := newCoalescer(applier, nil, 16, 1)
	c.start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := c.apply(lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: []byte{byte(i)}}, false); !errors.Is(err, boom) {
				t.Errorf("write %d: err = %v, want the batch error", i, err)
			}
		}(i)
	}
	wg.Wait()
	c.stop()
}

// TestCoalescerPartialFailureKeepsAppliedWrites: shards fail
// independently, so a write the engine reports applied must come back as
// success even when a stranger's mutation in the same coalesced batch
// failed on another shard.
func TestCoalescerPartialFailureKeepsAppliedWrites(t *testing.T) {
	boom := errors.New("shard 1 disk on fire")
	applier := &blockingApplier{err: boom, partialOK: true}
	c := newCoalescer(applier, nil, 16, 1)
	c.start()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ok, _, err := c.apply(lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: []byte{byte(i)}}, false)
			if i%2 == 0 { // the fake applies even first-bytes durably
				if err != nil || !ok {
					t.Errorf("applied write %d: ok=%v err=%v, want success", i, ok, err)
				}
			} else if !errors.Is(err, boom) {
				t.Errorf("failed write %d: err = %v, want the batch error", i, err)
			}
		}(i)
	}
	wg.Wait()
	c.stop()
}

// TestCoalescerRespectsMaxBatch: six writes queued behind a held batch
// drain in cap-sized groups, never exceeding MaxBatch.
func TestCoalescerRespectsMaxBatch(t *testing.T) {
	applier := &blockingApplier{entered: make(chan int), gate: make(chan struct{})}
	c := newCoalescer(applier, nil, 2, 1)
	c.start()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := c.apply(lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: []byte("leader")}, false); err != nil {
			t.Errorf("leader apply: %v", err)
		}
	}()
	if n := <-applier.entered; n != 1 {
		t.Fatalf("leader batch size = %d, want 1", n)
	}
	const queued = 6
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := c.apply(lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: []byte{byte(i)}}, false); err != nil {
				t.Errorf("apply %d: %v", i, err)
			}
		}(i)
	}
	waitQueued(t, c, queued)
	applier.gate <- struct{}{} // leader out; the rest drain capped
	for drained := 0; drained < queued; {
		n := <-applier.entered
		if n > 2 {
			t.Fatalf("batch of %d exceeds MaxBatch=2", n)
		}
		drained += n
		applier.gate <- struct{}{}
	}
	wg.Wait()
	c.stop()
}
