package server_test

import "testing"

// BenchmarkServerGet measures the full GET round trip — client encode,
// TCP, in-place request decode, engine (or read-cache) lookup, zero-copy
// response encode — with allocations reported for the whole process
// (client and server share it). The cache=on variant serves a resident
// working set; cache=off exercises the engine path.
func BenchmarkServerGet(b *testing.B) {
	for _, bench := range []struct {
		name       string
		cacheBytes int64
	}{
		{"cache=off", 0},
		{"cache=on", 16 << 20},
	} {
		b.Run(bench.name, func(b *testing.B) {
			opts := storeOptions()
			opts.ReadCache.Bytes = bench.cacheBytes
			srv, _ := startServer(b, opts, nil)
			c := dial(b, srv, 1)

			const keys = 512
			pks := make([][]byte, keys)
			for i := range pks {
				pk, rec := tweet(uint64(i))
				pks[i] = pk
				if err := c.Upsert(pk, rec); err != nil {
					b.Fatal(err)
				}
			}
			// Warm the cache (and the buffer cache) once.
			for _, pk := range pks {
				if _, found, err := c.Get(pk); err != nil || !found {
					b.Fatalf("warmup get: found=%v err=%v", found, err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, found, err := c.Get(pks[i%keys]); err != nil || !found {
					b.Fatalf("get: found=%v err=%v", found, err)
				}
			}
		})
	}
}
