package maint

import "sync"

// JobKind classifies a maintenance job for dispatch gating. Flush jobs
// are never gated — memtable freezes must always drain or ingest stalls
// forever; merge jobs pass through the installed gate (if any) so the
// admission governor can throttle them against foreground latency.
type JobKind uint8

// Job kinds.
const (
	JobFlush JobKind = iota
	JobMerge
)

type job struct {
	kind JobKind
	fn   func()
}

// Pool runs maintenance jobs on a bounded set of worker goroutines. Submitted
// jobs queue without bound; at most the configured number run at once. All
// methods are safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []job
	workers int // configured worker bound
	spawned int // workers currently alive
	active  int // jobs currently executing
	closed  bool
	yield   func(point string) // scheduling hook around jobs (nil = off)
	gate    func()             // merge-dispatch gate (nil = open)
}

// NewPool creates a pool with the given worker bound. workers < 1 is treated
// as 1 (a pool with zero workers could never drain).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// SetYield installs a scheduling hook invoked by each worker immediately
// before and after it runs a job, with a label naming the point. The
// deterministic simulation harness uses it to perturb how maintenance work
// interleaves with foreground writers. Call it before the pool sees
// traffic; a nil hook disables the points.
func (p *Pool) SetYield(fn func(point string)) {
	p.mu.Lock()
	p.yield = fn
	p.mu.Unlock()
}

// Workers returns the pool's worker bound.
func (p *Pool) Workers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers
}

// Stats reports the pool's queue depth, the jobs executing right now,
// and the worker bound — the gauges /debug/maintenance serves.
func (p *Pool) Stats() (queued, active, workers int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue), p.active, p.workers
}

// SetGate installs the merge-dispatch gate: a function each worker calls
// (outside the pool lock) immediately before running a JobMerge job. The
// admission governor installs its token-bucket Wait here. Flush jobs
// bypass the gate, and a worker holding gated work prefers a queued flush
// over a queued merge, so throttling can never starve memtable drains.
// A nil gate disables gating.
func (p *Pool) SetGate(fn func()) {
	p.mu.Lock()
	p.gate = fn
	p.mu.Unlock()
}

// Submit enqueues a flush-class job (ungated). It returns false when the
// pool is closed (the job is dropped); callers that must not lose work
// should check the result. Workers are spawned lazily, up to the bound.
func (p *Pool) Submit(fn func()) bool {
	return p.SubmitKind(JobFlush, fn)
}

// SubmitKind enqueues a job of the given kind. Merge-class jobs pass
// through the installed dispatch gate before running.
func (p *Pool) SubmitKind(kind JobKind, fn func()) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	p.queue = append(p.queue, job{kind: kind, fn: fn})
	if p.spawned < p.workers && p.spawned < p.active+len(p.queue) {
		p.spawned++
		go p.worker()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	return true
}

// worker drains the queue until the pool closes and no work remains.
func (p *Pool) worker() {
	p.mu.Lock()
	for {
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.spawned--
			p.cond.Broadcast()
			p.mu.Unlock()
			return
		}
		// With a gate installed, prefer a queued flush over a queued
		// merge: the frozen-memtable ceiling must never wait behind a
		// throttled merge dispatch.
		pick := 0
		if p.gate != nil && p.queue[pick].kind == JobMerge {
			for i := 1; i < len(p.queue); i++ {
				if p.queue[i].kind == JobFlush {
					pick = i
					break
				}
			}
		}
		j := p.queue[pick]
		p.queue = append(p.queue[:pick], p.queue[pick+1:]...)
		p.active++
		yield := p.yield
		gate := p.gate
		p.mu.Unlock()

		if j.kind == JobMerge && gate != nil {
			// Outside the lock: the gate may block (bounded by the
			// governor's rate floor), and other workers keep draining.
			gate()
		}
		if yield != nil {
			yield("maint.job.start")
		}
		j.fn()
		if yield != nil {
			yield("maint.job.done")
		}

		p.mu.Lock()
		p.active--
		p.cond.Broadcast()
	}
}

// Drain blocks until every job submitted so far has finished and the queue is
// empty. Jobs submitted while draining are waited for too (drain-to-idle).
func (p *Pool) Drain() {
	p.mu.Lock()
	for len(p.queue) > 0 || p.active > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close drains the pool and stops its workers. Submit returns false
// afterwards. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	for len(p.queue) > 0 || p.active > 0 || p.spawned > 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}
