// Package maint provides the background maintenance scheduler: a bounded
// pool of workers that run disk-component builds (asynchronous flushes) and
// policy-picked merges off the ingestion path.
//
// # Why
//
// The paper's concurrency-control protocols (Section 5.3) exist precisely
// so long-running merges can overlap with writers; this package supplies
// the execution side of that design. Synchronously, the write that crosses
// the memory budget performs the flush and every due merge inline, so
// ingest latency tracks merge latency. With a Pool configured
// (lsmstore.Options.MaintenanceWorkers), the write path only freezes the
// memory components — a writer drain plus pointer swaps — and returns; the
// frozen memtables stay readable through the trees' flushing queues until
// their disk components install.
//
// # How the pieces fit
//
// A Pool is shared by every partition of a store, so the total number of
// concurrent maintenance jobs is bounded machine-wide while each dataset
// (shard) schedules its own flush builds and merges independently —
// per-shard compaction. Ordering between jobs of one dataset is enforced
// by the dataset, not the pool: flush builds pop a FIFO batch queue under
// a per-dataset build mutex (so components install in freeze/epoch order),
// and merges serialize on a per-dataset merge mutex while remaining free
// to overlap flush builds (merge installs locate their inputs by identity,
// tolerating concurrently appended components).
//
// Backpressure couples the two sides: writers soft-stall when too many
// frozen batches await builds, or when the primary index accumulates too
// many unmerged components while a merge is still pending. Stall counts
// and durations surface in metrics.Counters (WriteStalls,
// WriteStallNanos).
//
// Failure semantics live outside the pool as well: a simulated Crash bumps
// the trees' install generations, so jobs caught mid-build or mid-merge
// abandon their installs — exactly as a real failure discards a
// half-written component — and the write-ahead log replays whatever died
// with the frozen memtables. Errors from background jobs are sticky on the
// dataset and surface on the next write.
//
// The scheduler itself is deliberately minimal: jobs are plain funcs, the
// pool only bounds concurrency and supports draining (Drain, Close).
package maint
