package maint

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsAllJobs(t *testing.T) {
	p := NewPool(3)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if !p.Submit(func() { n.Add(1) }) {
			t.Fatal("submit refused on an open pool")
		}
	}
	p.Drain()
	if got := n.Load(); got != 100 {
		t.Fatalf("ran %d of 100 jobs", got)
	}
	p.Close()
	if p.Submit(func() {}) {
		t.Fatal("submit accepted on a closed pool")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 2
	p := NewPool(workers)
	defer p.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", got, workers)
	}
}

func TestPoolDrainWaitsForInFlight(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	release := make(chan struct{})
	var done atomic.Bool
	p.Submit(func() {
		<-release
		done.Store(true)
	})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	p.Drain()
	if !done.Load() {
		t.Fatal("Drain returned before the in-flight job finished")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Submit(func() {})
	p.Close()
	p.Close()
}

func TestPoolGateOnlyMergeJobs(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var gated atomic.Int64
	p.SetGate(func() { gated.Add(1) })
	var flushes, merges atomic.Int64
	for i := 0; i < 5; i++ {
		p.Submit(func() { flushes.Add(1) })
		p.SubmitKind(JobMerge, func() { merges.Add(1) })
	}
	p.Drain()
	if flushes.Load() != 5 || merges.Load() != 5 {
		t.Fatalf("ran %d flushes, %d merges; want 5 each", flushes.Load(), merges.Load())
	}
	if got := gated.Load(); got != 5 {
		t.Fatalf("gate called %d times, want once per merge (5)", got)
	}
	// Clearing the gate stops gating.
	p.SetGate(nil)
	p.SubmitKind(JobMerge, func() {})
	p.Drain()
	if got := gated.Load(); got != 5 {
		t.Fatalf("gate called %d times after SetGate(nil), want still 5", got)
	}
}

func TestPoolPrefersFlushWhenGated(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	p.SetGate(func() {})
	// Occupy the single worker so the queue builds in a known order.
	block := make(chan struct{})
	p.Submit(func() { <-block })
	var order []string
	var mu sync.Mutex
	rec := func(s string) func() {
		return func() {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	p.SubmitKind(JobMerge, rec("merge1"))
	p.SubmitKind(JobMerge, rec("merge2"))
	p.Submit(rec("flush1"))
	close(block)
	p.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 3 || order[0] != "flush1" {
		t.Fatalf("dispatch order %v, want flush first under a gate", order)
	}
}
