// Package txn provides the record-level concurrency control the paper's
// ingestion paths assume: writers hold an exclusive lock on a primary key
// for the duration of a record-level transaction (Section 5.2), component
// builders take shared locks on scanned keys (Lock method, Fig 10), and the
// Side-file method briefly takes a dataset-level shared lock to drain
// in-flight transactions (Fig 11).
package txn

import (
	"sync"
	"sync/atomic"
)

// LockMode distinguishes shared from exclusive key locks.
type LockMode int

// Lock modes.
const (
	Shared LockMode = iota
	Exclusive
)

type keyLock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int
	writer  bool
	waiters int
}

// LockManager provides blocking S/X locks on keys.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*keyLock
}

// NewLockManager creates an empty lock table.
func NewLockManager() *LockManager {
	return &LockManager{locks: make(map[string]*keyLock)}
}

func (m *LockManager) get(key string) *keyLock {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[key]
	if !ok {
		l = &keyLock{}
		l.cond = sync.NewCond(&l.mu)
		m.locks[key] = l
	}
	l.waiters++
	return l
}

func (m *LockManager) put(key string, l *keyLock) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l.waiters--
	if l.waiters == 0 && l.readers == 0 && !l.writer {
		delete(m.locks, key)
	}
}

// Lock acquires key in the given mode, blocking until compatible.
func (m *LockManager) Lock(key []byte, mode LockMode) {
	k := string(key)
	l := m.get(k)
	l.mu.Lock()
	if mode == Exclusive {
		for l.writer || l.readers > 0 {
			l.cond.Wait()
		}
		l.writer = true
	} else {
		for l.writer {
			l.cond.Wait()
		}
		l.readers++
	}
	l.mu.Unlock()
}

// Unlock releases key from the given mode.
func (m *LockManager) Unlock(key []byte, mode LockMode) {
	k := string(key)
	m.mu.Lock()
	l := m.locks[k]
	m.mu.Unlock()
	if l == nil {
		return
	}
	l.mu.Lock()
	if mode == Exclusive {
		l.writer = false
	} else {
		l.readers--
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	m.put(k, l)
}

// WithLock runs fn while holding key in the given mode.
func (m *LockManager) WithLock(key []byte, mode LockMode, fn func()) {
	m.Lock(key, mode)
	defer m.Unlock(key, mode)
	fn()
}

// IDs allocates transaction identifiers.
type IDs struct{ next atomic.Int64 }

// Next returns a fresh transaction ID.
func (g *IDs) Next() int64 { return g.next.Add(1) }

// AdvanceTo makes sure future IDs exceed floor. Reopening a durable store
// seeds the allocator past every transaction ID in the recovered log:
// write-ahead-log replay matches commits to data records by ID, so an ID
// must never be reused across process generations.
func (g *IDs) AdvanceTo(floor int64) {
	for cur := g.next.Load(); cur < floor; cur = g.next.Load() {
		g.next.CompareAndSwap(cur, floor)
	}
}

// DatasetLock is the dataset-level lock of the Side-file protocol: normal
// writers hold it shared for the duration of each record-level transaction;
// the component builder takes it exclusively (the paper's "S lock dataset"
// drains in-flight transactions; exclusivity against writers is what the
// drain achieves, so we model it directly as a write lock).
type DatasetLock struct {
	mu sync.RWMutex
}

// Enter marks a writer transaction in flight.
func (d *DatasetLock) Enter() { d.mu.RLock() }

// Exit marks the writer transaction finished.
func (d *DatasetLock) Exit() { d.mu.RUnlock() }

// Drain blocks until all in-flight writers exit, runs fn, then reopens.
func (d *DatasetLock) Drain(fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn()
}
