package txn

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestExclusiveLockMutualExclusion(t *testing.T) {
	m := NewLockManager()
	key := []byte("k")
	var counter, max int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Lock(key, Exclusive)
				c := atomic.AddInt64(&counter, 1)
				if c > atomic.LoadInt64(&max) {
					atomic.StoreInt64(&max, c)
				}
				atomic.AddInt64(&counter, -1)
				m.Unlock(key, Exclusive)
			}
		}()
	}
	wg.Wait()
	if max != 1 {
		t.Fatalf("X lock admitted %d holders", max)
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewLockManager()
	key := []byte("k")
	m.Lock(key, Shared)
	done := make(chan struct{})
	go func() {
		m.Lock(key, Shared) // must not block
		m.Unlock(key, Shared)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second shared lock blocked")
	}
	m.Unlock(key, Shared)
}

func TestSharedBlocksExclusive(t *testing.T) {
	m := NewLockManager()
	key := []byte("k")
	m.Lock(key, Shared)
	acquired := make(chan struct{})
	go func() {
		m.Lock(key, Exclusive)
		close(acquired)
		m.Unlock(key, Exclusive)
	}()
	select {
	case <-acquired:
		t.Fatal("X lock acquired while S held")
	case <-time.After(50 * time.Millisecond):
	}
	m.Unlock(key, Shared)
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("X lock never acquired after S release")
	}
}

func TestDifferentKeysIndependent(t *testing.T) {
	m := NewLockManager()
	m.Lock([]byte("a"), Exclusive)
	done := make(chan struct{})
	go func() {
		m.Lock([]byte("b"), Exclusive)
		m.Unlock([]byte("b"), Exclusive)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("lock on b blocked by lock on a")
	}
	m.Unlock([]byte("a"), Exclusive)
}

func TestLockTableCleansUp(t *testing.T) {
	m := NewLockManager()
	for i := 0; i < 100; i++ {
		k := []byte{byte(i)}
		m.Lock(k, Exclusive)
		m.Unlock(k, Exclusive)
	}
	m.mu.Lock()
	n := len(m.locks)
	m.mu.Unlock()
	if n != 0 {
		t.Fatalf("lock table retains %d entries", n)
	}
}

func TestWithLock(t *testing.T) {
	m := NewLockManager()
	ran := false
	m.WithLock([]byte("k"), Shared, func() { ran = true })
	if !ran {
		t.Fatal("WithLock did not run fn")
	}
	// lock released afterwards
	m.Lock([]byte("k"), Exclusive)
	m.Unlock([]byte("k"), Exclusive)
}

func TestIDsUnique(t *testing.T) {
	var ids IDs
	seen := make(map[int64]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				id := ids.Next()
				mu.Lock()
				if seen[id] {
					t.Errorf("duplicate id %d", id)
				}
				seen[id] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestDatasetLockDrains(t *testing.T) {
	var d DatasetLock
	var inFlight atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				d.Enter()
				inFlight.Add(1)
				time.Sleep(time.Microsecond)
				inFlight.Add(-1)
				d.Exit()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		d.Drain(func() {
			if n := inFlight.Load(); n != 0 {
				t.Errorf("drain saw %d in-flight writers", n)
			}
		})
	}
	close(stop)
	wg.Wait()
}
