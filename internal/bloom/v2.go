package bloom

import (
	"encoding/binary"
	"errors"
	"math"
	"math/bits"
)

// V2 is the runtime read-path filter: a split-block Bloom filter in the
// style of Impala/Parquet. Each block is one 64-byte cache line holding
// eight 64-bit words; a key sets (and tests) exactly one bit in each word,
// with the bit index derived by multiplying the key hash with a per-word
// odd constant. A membership test therefore touches a single cache line,
// performs no modulo operations, and allocates nothing.
//
// Standard and Blocked (bloom.go) remain the paper's Section 3.2 cost-model
// variants; V2 exists to make real (wall-clock) point reads fast and to be
// snapshotted into the manifest via Marshal/UnmarshalV2 so reopen does not
// rebuild filters by scanning every component.
type V2 struct {
	words  []uint64 // v2WordsPerBlock words per block, laid out block-major
	blocks uint64
}

const (
	v2WordsPerBlock = 8 // 8 x uint64 = one 64-byte cache line
	v2BlockBytes    = v2WordsPerBlock * 8
	// v2K is the effective probe count: one bit per word in the block.
	v2K = v2WordsPerBlock
)

// v2Salts are the per-word odd multipliers (from the Kirsch-Mitzenmacher
// multiply-shift family, as used by Impala's split Bloom filter): bit index
// for word w is the top 6 bits of hash*salt[w].
var v2Salts = [v2WordsPerBlock]uint64{
	0x47b6137b44974d91, 0x8824ad5ba2b7289d,
	0x705495c72df1424b, 0x9efc49475c6bfb31,
	0x5c6bfb31705495c7, 0x44974d9147b6137b,
	0xa2b7289d8824ad5b, 0x2df1424b9efc4947,
}

// hashV2 is a fast non-cryptographic 64-bit hash (xxhash-style: 8-byte
// lanes folded with multiply-rotate, murmur-style avalanche finish). It is
// allocation-free and only used by V2, so its values are independent of the
// FNV-based cost-model filters.
func hashV2(key []byte) uint64 {
	const (
		p1 = 0x9e3779b185ebca87
		p2 = 0xc2b2ae3d27d4eb4f
		p3 = 0x165667b19e3779f9
	)
	h := uint64(len(key))*p1 + p3
	for len(key) >= 8 {
		h ^= binary.LittleEndian.Uint64(key) * p2
		h = bits.RotateLeft64(h, 31) * p1
		key = key[8:]
	}
	if len(key) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(key)) * p2
		h = bits.RotateLeft64(h, 23) * p1
		key = key[4:]
	}
	for _, c := range key {
		h ^= uint64(c) * p2
		h = bits.RotateLeft64(h, 11) * p1
	}
	// Avalanche (xxhash64 finalizer).
	h ^= h >> 33
	h *= p2
	h ^= h >> 29
	h *= p3
	h ^= h >> 32
	return h
}

// NewV2 sizes a split-block filter for n keys at bitsPerKey, rounded up to
// whole cache-line blocks.
func NewV2(n int, bitsPerKey float64) *V2 {
	if n < 1 {
		n = 1
	}
	m := uint64(math.Ceil(float64(n) * bitsPerKey))
	blocks := (m + v2BlockBytes*8 - 1) / (v2BlockBytes * 8)
	if blocks < 1 {
		blocks = 1
	}
	return &V2{
		words:  make([]uint64, blocks*v2WordsPerBlock),
		blocks: blocks,
	}
}

// NewV2FPR sizes a split-block filter for the target false-positive rate.
// Like the blocked variant it pays one extra bit per key over the standard
// filter's optimum to compensate for per-block load variance.
func NewV2FPR(n int, fpr float64) *V2 {
	return NewV2(n, BitsPerKeyFor(fpr)+1)
}

// blockOf maps a hash onto a block index without a modulo, using the
// high-multiply fast-range reduction.
func (f *V2) blockOf(h uint64) uint64 {
	hi, _ := bits.Mul64(h, f.blocks)
	return hi
}

// Add inserts a key: one bit per word of the key's block.
func (f *V2) Add(key []byte) {
	h := hashV2(key)
	base := f.blockOf(h) * v2WordsPerBlock
	block := f.words[base : base+v2WordsPerBlock : base+v2WordsPerBlock]
	for w := range block {
		block[w] |= 1 << ((h * v2Salts[w]) >> 58)
	}
}

// MayContain implements Filter; exactly one cache line is touched and the
// eight word probes are independent (no data-dependent short-circuit chain
// across cache lines).
func (f *V2) MayContain(key []byte) (bool, int) {
	h := hashV2(key)
	base := f.blockOf(h) * v2WordsPerBlock
	block := f.words[base : base+v2WordsPerBlock : base+v2WordsPerBlock]
	for w := range block {
		if block[w]&(1<<((h*v2Salts[w])>>58)) == 0 {
			return false, 1
		}
	}
	return true, 1
}

// NumBits implements Filter.
func (f *V2) NumBits() int { return int(f.blocks) * v2BlockBytes * 8 }

// K returns the number of word probes per test (for cost charging).
func (f *V2) K() int { return v2K }

// Marshal header: magic, format version, then the block count and raw words.
const (
	v2Magic   = "bfv2"
	v2Version = 1
)

// Marshal encodes the filter for the component manifest. The layout is
// magic ("bfv2"), a version byte, the block count as a little-endian
// uint64, then blocks*64 bytes of little-endian filter words.
func (f *V2) Marshal() []byte {
	out := make([]byte, 0, len(v2Magic)+1+8+len(f.words)*8)
	out = append(out, v2Magic...)
	out = append(out, v2Version)
	out = binary.LittleEndian.AppendUint64(out, f.blocks)
	for _, w := range f.words {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out
}

// ErrCorruptFilter reports a malformed V2 encoding.
var ErrCorruptFilter = errors.New("bloom: corrupt v2 filter encoding")

// UnmarshalV2 decodes a filter produced by Marshal. Corrupt input returns
// ErrCorruptFilter (wrapped), never a panic; callers fall back to rebuilding
// the filter by scanning the component.
func UnmarshalV2(data []byte) (*V2, error) {
	hdr := len(v2Magic) + 1 + 8
	if len(data) < hdr {
		return nil, errors.Join(ErrCorruptFilter, errors.New("short header"))
	}
	if string(data[:len(v2Magic)]) != v2Magic {
		return nil, errors.Join(ErrCorruptFilter, errors.New("bad magic"))
	}
	if data[len(v2Magic)] != v2Version {
		return nil, errors.Join(ErrCorruptFilter, errors.New("unknown version"))
	}
	blocks := binary.LittleEndian.Uint64(data[len(v2Magic)+1:])
	if blocks < 1 || blocks > uint64(len(data)) {
		return nil, errors.Join(ErrCorruptFilter, errors.New("implausible block count"))
	}
	body := data[hdr:]
	if uint64(len(body)) != blocks*v2BlockBytes {
		return nil, errors.Join(ErrCorruptFilter, errors.New("body length mismatch"))
	}
	f := &V2{words: make([]uint64, blocks*v2WordsPerBlock), blocks: blocks}
	for i := range f.words {
		f.words[i] = binary.LittleEndian.Uint64(body[i*8:])
	}
	return f, nil
}
