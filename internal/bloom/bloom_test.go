package bloom

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func keysFor(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, rng.Uint64())
		keys[i] = k
	}
	return keys
}

func TestStandardNoFalseNegatives(t *testing.T) {
	keys := keysFor(10000, 1)
	f := NewStandardFPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	for i, k := range keys {
		if ok, _ := f.MayContain(k); !ok {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestBlockedNoFalseNegatives(t *testing.T) {
	keys := keysFor(10000, 2)
	f := NewBlockedFPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	for i, k := range keys {
		if ok, _ := f.MayContain(k); !ok {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func measureFPR(t *testing.T, f Filter, absent [][]byte) float64 {
	t.Helper()
	fp := 0
	for _, k := range absent {
		if ok, _ := f.MayContain(k); ok {
			fp++
		}
	}
	return float64(fp) / float64(len(absent))
}

func TestStandardFalsePositiveRate(t *testing.T) {
	keys := keysFor(50000, 3)
	f := NewStandardFPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	fpr := measureFPR(t, f, keysFor(50000, 99))
	if fpr > 0.02 {
		t.Errorf("standard FPR %.4f exceeds 2%% (target 1%%)", fpr)
	}
}

func TestBlockedFalsePositiveRate(t *testing.T) {
	keys := keysFor(50000, 4)
	f := NewBlockedFPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	fpr := measureFPR(t, f, keysFor(50000, 98))
	// Blocked filters trade a slightly worse FPR for single-cache-line
	// probes even with the extra bit per key.
	if fpr > 0.03 {
		t.Errorf("blocked FPR %.4f exceeds 3%%", fpr)
	}
}

func TestBlockedSingleCacheLine(t *testing.T) {
	keys := keysFor(1000, 5)
	f := NewBlockedFPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	probe := keysFor(2000, 77)
	for _, k := range probe {
		if _, lines := f.MayContain(k); lines != 1 {
			t.Fatalf("blocked probe touched %d cache lines, want 1", lines)
		}
	}
}

func TestStandardCacheLinesBounded(t *testing.T) {
	keys := keysFor(1000, 6)
	f := NewStandardFPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keysFor(2000, 78) {
		ok, lines := f.MayContain(k)
		if lines < 1 || lines > f.K() {
			t.Fatalf("standard probe lines=%d outside [1,%d]", lines, f.K())
		}
		if ok && lines != f.K() {
			t.Fatalf("positive test must probe all %d lines, got %d", f.K(), lines)
		}
	}
}

func TestNoFalseNegativesQuick(t *testing.T) {
	f := func(raw [][]byte) bool {
		if len(raw) == 0 {
			return true
		}
		std := NewStandardFPR(len(raw), 0.01)
		blk := NewBlockedFPR(len(raw), 0.01)
		for _, k := range raw {
			std.Add(k)
			blk.Add(k)
		}
		for _, k := range raw {
			if ok, _ := std.MayContain(k); !ok {
				return false
			}
			if ok, _ := blk.MayContain(k); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBitsPerKeyFor(t *testing.T) {
	got := BitsPerKeyFor(0.01)
	if got < 9.5 || got > 9.6 {
		t.Errorf("BitsPerKeyFor(0.01) = %.2f, want ~9.59", got)
	}
	if BitsPerKeyFor(0) != 10 || BitsPerKeyFor(1) != 10 {
		t.Error("out-of-range FPR should fall back to 10 bits/key")
	}
}

func TestTinyFilters(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		std := NewStandardFPR(n, 0.01)
		blk := NewBlockedFPR(n, 0.01)
		k := []byte("only")
		std.Add(k)
		blk.Add(k)
		if ok, _ := std.MayContain(k); !ok {
			t.Errorf("n=%d standard lost its key", n)
		}
		if ok, _ := blk.MayContain(k); !ok {
			t.Errorf("n=%d blocked lost its key", n)
		}
	}
}

func BenchmarkStandardMayContain(b *testing.B) {
	keys := keysFor(100000, 7)
	f := NewStandardFPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}

func BenchmarkBlockedMayContain(b *testing.B) {
	keys := keysFor(100000, 8)
	f := NewBlockedFPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}

func ExampleStandard() {
	f := NewStandardFPR(100, 0.01)
	f.Add([]byte("tweet-1"))
	ok, _ := f.MayContain([]byte("tweet-1"))
	fmt.Println(ok)
	// Output: true
}
