// Package bloom provides the two Bloom filter variants evaluated in
// Section 3.2 of the paper: a standard Bloom filter, whose k probes may each
// touch a distinct cache line, and a cache-friendly blocked Bloom filter
// (Putze et al.) whose first hash selects one cache-line-sized block and
// whose remaining probes stay inside it, at the cost of roughly one extra
// bit per key for the same false-positive rate.
//
// Membership tests report how many cache lines were touched so the caller
// can charge the virtual clock; the filters themselves are accounting-free.
package bloom

import (
	"encoding/binary"
	"math"
)

// Filter is the membership interface shared by both variants.
type Filter interface {
	// MayContain reports whether key may be present, together with the
	// number of distinct cache lines touched by the test (for the cost
	// model: a standard filter touches up to k, a blocked filter one).
	MayContain(key []byte) (ok bool, cacheLines int)
	// NumBits returns the size of the bit space.
	NumBits() int
}

// FNV-1a 64-bit parameters (hash/fnv), inlined below so hash2 stays
// allocation-free on the read hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a is hash/fnv's New64a().Write(b).Sum64() without the heap-allocated
// digest. The values are bit-identical to the library implementation, which
// keeps every previously built filter (and the simulator's deterministic
// probe traces) unchanged.
func fnv1a(seed uint64, b []byte) uint64 {
	h := seed
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// hash2 derives the two independent 64-bit hashes used for double hashing
// (g_i = h1 + i*h2), the standard construction for k hash functions.
func hash2(key []byte) (uint64, uint64) {
	h1 := fnv1a(fnvOffset64, key)
	// Second hash: re-hash h1 with a salt, cheap and independent enough.
	var buf [9]byte
	binary.LittleEndian.PutUint64(buf[:], h1)
	buf[8] = 0x9e
	h2 := fnv1a(fnvOffset64, buf[:]) | 1 // force odd so strides cover the space
	return h1, h2
}

// optimalK returns the hash count minimizing FPR for bitsPerKey.
func optimalK(bitsPerKey float64) int {
	k := int(math.Round(bitsPerKey * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return k
}

// Standard is a classic partitioned-by-nothing Bloom filter.
type Standard struct {
	bits []uint64
	m    uint64 // number of bits
	k    int
}

// BitsPerKeyFor returns the bits/key needed for the target false-positive
// rate (m/n = -ln(p)/ln(2)^2). The paper uses p = 1%.
func BitsPerKeyFor(fpr float64) float64 {
	if fpr <= 0 || fpr >= 1 {
		return 10
	}
	return -math.Log(fpr) / (math.Ln2 * math.Ln2)
}

// NewStandard sizes a standard filter for n keys at bitsPerKey.
func NewStandard(n int, bitsPerKey float64) *Standard {
	if n < 1 {
		n = 1
	}
	m := uint64(math.Ceil(float64(n) * bitsPerKey))
	if m < 64 {
		m = 64
	}
	return &Standard{
		bits: make([]uint64, (m+63)/64),
		m:    m,
		k:    optimalK(bitsPerKey),
	}
}

// Add inserts a key.
func (f *Standard) Add(key []byte) {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain implements Filter. Each probe is assumed to touch a distinct
// cache line (the bit positions are spread over the whole bit space); the
// test short-circuits on the first zero bit, so the touched-line count is
// the number of probes actually performed.
func (f *Standard) MayContain(key []byte) (bool, int) {
	h1, h2 := hash2(key)
	for i := 0; i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false, i + 1
		}
	}
	return true, f.k
}

// NumBits implements Filter.
func (f *Standard) NumBits() int { return int(f.m) }

// K returns the number of hash functions.
func (f *Standard) K() int { return f.k }

// blockBits is one CPU cache line (64 bytes) of bit space.
const blockBits = 512

// Blocked is a cache-friendly blocked Bloom filter: the first hash selects a
// 512-bit block, the remaining k probes test bits within that block, so a
// membership test costs a single cache miss (Section 3.2). To reach the same
// false-positive rate as a standard filter it is sized with one extra bit
// per key.
type Blocked struct {
	bits   []uint64
	blocks uint64
	k      int
}

// NewBlocked sizes a blocked filter for n keys at bitsPerKey (the caller
// should already have added the extra bit per key; see NewBlockedFPR).
func NewBlocked(n int, bitsPerKey float64) *Blocked {
	if n < 1 {
		n = 1
	}
	m := uint64(math.Ceil(float64(n) * bitsPerKey))
	blocks := (m + blockBits - 1) / blockBits
	if blocks < 1 {
		blocks = 1
	}
	return &Blocked{
		bits:   make([]uint64, blocks*(blockBits/64)),
		blocks: blocks,
		k:      optimalK(bitsPerKey),
	}
}

// NewBlockedFPR sizes a blocked filter for the target false-positive rate,
// adding the extra bit per key the paper notes is required.
func NewBlockedFPR(n int, fpr float64) *Blocked {
	return NewBlocked(n, BitsPerKeyFor(fpr)+1)
}

// NewStandardFPR sizes a standard filter for the target false-positive rate.
func NewStandardFPR(n int, fpr float64) *Standard {
	return NewStandard(n, BitsPerKeyFor(fpr))
}

// Add inserts a key.
func (f *Blocked) Add(key []byte) {
	h1, h2 := hash2(key)
	block := (h1 % f.blocks) * (blockBits / 64)
	for i := 1; i <= f.k; i++ {
		bit := (h1 + uint64(i)*h2) % blockBits
		f.bits[block+bit/64] |= 1 << (bit % 64)
	}
}

// MayContain implements Filter; exactly one cache line is touched.
func (f *Blocked) MayContain(key []byte) (bool, int) {
	h1, h2 := hash2(key)
	block := (h1 % f.blocks) * (blockBits / 64)
	for i := 1; i <= f.k; i++ {
		bit := (h1 + uint64(i)*h2) % blockBits
		if f.bits[block+bit/64]&(1<<(bit%64)) == 0 {
			return false, 1
		}
	}
	return true, 1
}

// NumBits implements Filter.
func (f *Blocked) NumBits() int { return int(f.blocks * blockBits) }

// K returns the number of probes per test.
func (f *Blocked) K() int { return f.k }
