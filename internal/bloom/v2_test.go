package bloom

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"testing"
)

func TestV2NoFalseNegatives(t *testing.T) {
	keys := keysFor(10000, 21)
	f := NewV2FPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	for i, k := range keys {
		if ok, _ := f.MayContain(k); !ok {
			t.Fatalf("false negative for key %d", i)
		}
	}
}

func TestV2FalsePositiveRate(t *testing.T) {
	keys := keysFor(50000, 22)
	f := NewV2FPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	fpr := measureFPR(t, f, keysFor(50000, 97))
	// The split-block layout with a fixed 8 probes lands comfortably under
	// the 1% target at ~10.6 bits/key; 2% is the regression ceiling.
	if fpr > 0.02 {
		t.Errorf("v2 FPR %.4f exceeds 2%% (target 1%%)", fpr)
	}
}

func TestV2SingleCacheLine(t *testing.T) {
	keys := keysFor(1000, 23)
	f := NewV2FPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keysFor(2000, 79) {
		if _, lines := f.MayContain(k); lines != 1 {
			t.Fatalf("v2 probe touched %d cache lines, want 1", lines)
		}
	}
}

func TestV2Tiny(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		f := NewV2FPR(n, 0.01)
		k := []byte("only")
		f.Add(k)
		if ok, _ := f.MayContain(k); !ok {
			t.Errorf("n=%d v2 lost its key", n)
		}
	}
}

func TestV2MarshalRoundTrip(t *testing.T) {
	keys := keysFor(5000, 24)
	f := NewV2FPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	enc := f.Marshal()
	g, err := UnmarshalV2(enc)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if g.blocks != f.blocks || len(g.words) != len(f.words) {
		t.Fatalf("shape mismatch: %d/%d blocks, %d/%d words", g.blocks, f.blocks, len(g.words), len(f.words))
	}
	for i := range f.words {
		if g.words[i] != f.words[i] {
			t.Fatalf("word %d differs after round trip", i)
		}
	}
	if !bytes.Equal(g.Marshal(), enc) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

func TestV2UnmarshalRejectsCorrupt(t *testing.T) {
	f := NewV2FPR(100, 0.01)
	f.Add([]byte("k"))
	enc := f.Marshal()
	cases := map[string][]byte{
		"empty":       {},
		"short":       enc[:4],
		"bad magic":   append([]byte("nope"), enc[4:]...),
		"bad version": append(append([]byte{}, enc[:4]...), append([]byte{99}, enc[5:]...)...),
		"truncated":   enc[:len(enc)-3],
		"padded":      append(append([]byte{}, enc...), 0),
		"zero blocks": func() []byte {
			c := append([]byte{}, enc...)
			binary.LittleEndian.PutUint64(c[5:], 0)
			return c
		}(),
	}
	for name, data := range cases {
		if _, err := UnmarshalV2(data); !errors.Is(err, ErrCorruptFilter) {
			t.Errorf("%s: err=%v, want ErrCorruptFilter", name, err)
		}
	}
}

// TestHash2MatchesFNV pins the inlined FNV-1a in hash2 to the library
// implementation: existing filters were built with hash/fnv, so the
// allocation-free rewrite must be value-identical.
func TestHash2MatchesFNV(t *testing.T) {
	for _, k := range append(keysFor(200, 25), []byte{}, []byte("a"), bytes.Repeat([]byte{0xff}, 100)) {
		h := fnv.New64a()
		h.Write(k)
		wantH1 := h.Sum64()
		var buf [9]byte
		binary.LittleEndian.PutUint64(buf[:], wantH1)
		buf[8] = 0x9e
		h.Reset()
		h.Write(buf[:])
		wantH2 := h.Sum64() | 1
		gotH1, gotH2 := hash2(k)
		if gotH1 != wantH1 || gotH2 != wantH2 {
			t.Fatalf("hash2(%x) = %x,%x; fnv reference %x,%x", k, gotH1, gotH2, wantH1, wantH2)
		}
	}
}

// TestMayContainAllocFree guards the satellite fix: membership tests on all
// three variants must not allocate.
func TestMayContainAllocFree(t *testing.T) {
	keys := keysFor(1000, 26)
	std := NewStandardFPR(len(keys), 0.01)
	blk := NewBlockedFPR(len(keys), 0.01)
	v2 := NewV2FPR(len(keys), 0.01)
	for _, k := range keys {
		std.Add(k)
		blk.Add(k)
		v2.Add(k)
	}
	probe := keys[7]
	for name, fn := range map[string]func(){
		"standard": func() { std.MayContain(probe) },
		"blocked":  func() { blk.MayContain(probe) },
		"v2":       func() { v2.MayContain(probe) },
	} {
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s MayContain allocates %.1f/op, want 0", name, n)
		}
	}
}

// FuzzBloomV2 is the house-style fuzzer (see internal/wire/fuzz_test.go):
// split the input into keys, assert no false negatives against a map
// oracle, and assert Marshal/UnmarshalV2 round-trips to an identical
// filter. Raw fuzz bytes are also fed straight to UnmarshalV2, which must
// reject corruption with ErrCorruptFilter and never panic.
func FuzzBloomV2(f *testing.F) {
	f.Add([]byte("alpha\x00beta\x00gamma"), uint8(9))
	f.Add([]byte{}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xab}, 300), uint8(64))
	f.Add(NewV2FPR(10, 0.01).Marshal(), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		// Corrupt-input leg: arbitrary bytes must decode or error, never panic.
		if g, err := UnmarshalV2(data); err == nil {
			if !bytes.Equal(g.Marshal(), data) {
				t.Fatal("accepted encoding does not re-marshal identically")
			}
		} else if !errors.Is(err, ErrCorruptFilter) {
			t.Fatalf("unmarshal error %v does not wrap ErrCorruptFilter", err)
		}

		// Oracle leg: derive keys from the input, check no false negatives.
		size := int(chunk)%16 + 1
		var keys [][]byte
		oracle := map[string]bool{}
		for i := 0; i+size <= len(data) && len(keys) < 256; i += size {
			k := data[i : i+size]
			keys = append(keys, k)
			oracle[string(k)] = true
		}
		if len(keys) == 0 {
			return
		}
		filter := NewV2FPR(len(keys), 0.01)
		for _, k := range keys {
			filter.Add(k)
		}
		for k := range oracle {
			if ok, _ := filter.MayContain([]byte(k)); !ok {
				t.Fatalf("false negative for inserted key %x", k)
			}
		}
		enc := filter.Marshal()
		again, err := UnmarshalV2(enc)
		if err != nil {
			t.Fatalf("round trip unmarshal: %v", err)
		}
		if !bytes.Equal(again.Marshal(), enc) {
			t.Fatal("marshal round trip not identity")
		}
		for k := range oracle {
			if ok, _ := again.MayContain([]byte(k)); !ok {
				t.Fatalf("false negative after round trip for key %x", k)
			}
		}
	})
}

func BenchmarkV2MayContain(b *testing.B) {
	keys := keysFor(100000, 27)
	f := NewV2FPR(len(keys), 0.01)
	for _, k := range keys {
		f.Add(k)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(keys[i%len(keys)])
	}
}
