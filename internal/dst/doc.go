// Package dst is the deterministic simulation testing harness
// (FoundationDB-style) for the LSM store: one seed drives a workload, a
// fault schedule, kill points, and crash-image reconstruction, and the
// whole run — op trace, fault schedule, verdict — reproduces bit-for-bit
// from that seed alone.
//
// # Architecture
//
// Four pieces compose a run:
//
//   - Control/Device (device.go): a storage.Device wrapper over the real
//     file backend that traces every mutating and durability operation,
//     injects seeded faults (failed commit fsyncs, lying group fsyncs,
//     torn WAL appends, failed manifest installs, failed page appends,
//     delayed syncs), enforces a crash-at-op-N kill switch, and tracks
//     each shard's WAL durable prefix for the crash-image builder.
//   - SimSleeper/Sched (sleeper.go, sched.go): virtual time behind
//     metrics.Sleeper, and the yield hook the engine calls at its
//     instrumented scheduling points (WAL group commit, maintenance
//     pool).
//   - Model (model.go): an in-memory mirror holding each key's
//     acknowledged state plus the set of unacknowledged writes whose fate
//     is open, with three check regimes — exact in-session reads, legal
//     states after an in-process crash-recover, and legal states after a
//     process kill and reopen.
//   - harness (harness.go): the session loop — open, reconcile the model
//     against the reopened store, drive seeded workload ops with strict
//     read/query/scan checking, crash (soft or hard), repeat — plus the
//     greedy fault-schedule minimizer (minimize.go) and the CLI core
//     (cli.go) that cmd/lsmdst wraps.
//
// # Determinism contract
//
// A run with Profile Seq is bit-reproducible: same seed, same op trace
// hash, same fault schedule, same verdict, on every execution. That rests
// on rules this package (and the engine paths it exercises) must keep:
//
//   - No wall clock. Nothing under internal/dst reads time.Now, sleeps,
//     or arms runtime timers; real time enters only through the
//     metrics.Sleeper seam, which SimSleeper replaces with virtual time.
//     The lsmlint clocksource analyzer enforces this for the package.
//     Wall-clock concerns (sweep deadlines) live in cmd/lsmdst only.
//   - No bare goroutines in checked paths. The Seq profile runs the
//     store single-threaded (no maintenance workers, shard fan-out of
//     one); the group-commit leader path never arms its hold-open timer
//     for a lone committer, so no scheduling decision is left to the
//     runtime. The Conc profile deliberately gives that up: verdicts
//     stay sound, traces are not comparable.
//   - No map-iteration order. Every check that walks model state sorts
//     keys first; the trace never records anything derived from Go map
//     order.
//   - Seeded streams are forked per purpose (workload, session policy,
//     crash images, fault decisions), so adding draws to one stream
//     never shifts another. Fault decisions are additionally stateless —
//     a pure function of (shard, op, per-op ordinal) — so the minimizer
//     can suppress one fault without reshuffling the rest.
//
// The determinism test (dst_test.go in lsmstore) runs the same seed five
// times and asserts identical full traces, fault schedules, and verdicts.
package dst
