package dst

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// snapshotCrashImage copies the store directory src into dst as the
// directory an OS-level crash would have left behind:
//
//   - Every regular file is copied as the filesystem holds it. Pages the
//     process still buffers in memory are naturally absent — exactly what
//     dies with the process — while SaveManifest's install barrier
//     guarantees every file a surviving manifest references was synced.
//   - The manifest itself is installed by atomic rename, so the copy holds
//     either the old or the new one, never a mix.
//   - Each shard's WAL file is truncated to its fsync-covered prefix plus
//     a seeded fraction of the unsynced tail: write()n-but-unsynced bytes
//     survive an OS crash only as far as the kernel happened to flush
//     them. Cutting mid-record produces the torn tail the WAL decoder
//     must stop at.
//   - The LOCK file is skipped; a lock never survives its process.
func snapshotCrashImage(src, dst string, c *Control, r *rng) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, rerr := filepath.Rel(src, path)
		if rerr != nil {
			return rerr
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		base := filepath.Base(path)
		if base == "LOCK" {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if base == "wal.log" {
			shard := shardOfDir(filepath.Dir(rel))
			length, durable := c.WALState(shard)
			unsynced := length - durable
			keep := durable
			if unsynced > 0 {
				keep += int64(r.float() * float64(unsynced+1))
			}
			if keep < int64(len(data)) {
				data = data[:keep]
			}
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// shardOfDir extracts the shard index from a "shard-NNNN" path element.
func shardOfDir(dir string) int {
	base := filepath.Base(dir)
	if n, ok := strings.CutPrefix(base, "shard-"); ok {
		var idx int
		if _, err := fmt.Sscanf(n, "%d", &idx); err == nil {
			return idx
		}
	}
	return 0
}
