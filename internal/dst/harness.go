package dst

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/admission"
	"repro/internal/workload"
	"repro/lsmstore"
)

// Profile selects how much real concurrency a run allows.
type Profile int

const (
	// Seq drives the store from a single goroutine with no background
	// maintenance workers: every scheduling decision is the harness's, so
	// a seed reproduces bit-identical op traces, fault schedules, and
	// verdicts.
	Seq Profile = iota
	// Conc enables background maintenance workers and seeded yield-point
	// perturbation. Verdicts stay sound (the model only trusts
	// acknowledged results), but the op trace is interleaving-dependent
	// and carries no reproducibility guarantee.
	Conc
)

func (p Profile) String() string {
	if p == Conc {
		return "conc"
	}
	return "seq"
}

// ParseProfile parses "seq" or "conc".
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "seq":
		return Seq, nil
	case "conc":
		return Conc, nil
	}
	return Seq, fmt.Errorf("dst: unknown profile %q", s)
}

// BugKeepCommit re-arms the historical keep-commit-on-failed-fsync bug
// (wal.Log.SetUnsafeKeepCommitOnFailedFsync) in every opened store, so the
// corpus can prove the harness catches it.
const BugKeepCommit = "keep-commit"

// Config parameterizes one simulated run.
type Config struct {
	// Seed drives every pseudo-random choice: workload, fault schedule,
	// kill points, crash-image tail survival, store configuration.
	Seed int64
	// Ops is the workload-operation budget across all sessions (default
	// 400).
	Ops int
	// FaultRate scales fault-injection probabilities; 0 disables
	// injection, 1 is the default rates.
	FaultRate float64
	// KillAfter, when positive, kills the device at exactly that traced
	// device operation of the first session (later sessions use the
	// seeded policy only when FaultRate is set). 0 leaves kills to the
	// seeded policy.
	KillAfter int64
	// Profile selects Seq (bit-reproducible) or Conc.
	Profile Profile
	// Dir is the scratch root for store generations; required, and must
	// be empty or absent.
	Dir string
	// Bug re-arms a historical bug ("" or BugKeepCommit).
	Bug string
	// RecordTrace retains the full event list in Report.Trace.
	RecordTrace bool
	// Suppress holds fired-fault indexes (FiredFault.Index) to decide but
	// not apply — the minimizer's knob.
	Suppress map[int64]bool
	// MaxSessions bounds crash/reopen cycles (default 12).
	MaxSessions int
}

// Report is one run's outcome.
type Report struct {
	Seed      int64
	Profile   Profile
	Setup     string // derived store configuration, for humans
	Failed    bool
	Verdict   string // "ok" or the first check violation
	Ops       int    // workload ops executed
	Sessions  int    // store generations opened
	Kills     int    // simulated process deaths
	TraceHash uint64
	TraceLen  int
	Trace     []string     // full event list when Config.RecordTrace
	Faults    []FiredFault // injector decisions that fired, in order
}

// checkFailure is a model-vs-store violation: the run's verdict, as
// opposed to a harness infrastructure error.
type checkFailure struct{ msg string }

func (e *checkFailure) Error() string { return e.msg }

func failf(format string, args ...any) error {
	return &checkFailure{msg: fmt.Sprintf(format, args...)}
}

// faultInduced reports whether err traces back to the harness's own fault
// injection or kill switch. Any other error out of the store is a bug.
func faultInduced(err error) bool {
	if errors.Is(err, ErrKilled) {
		return true
	}
	var ie *injectedError
	return errors.As(err, &ie)
}

// walkFaults calls fn with the kind of every injected fault in err's tree,
// and with "killed" for the kill sentinel. errors.As stops at the first
// injectedError, which is not enough: a batch error can join a maintenance
// fault with a later commit fault.
func walkFaults(err error, fn func(kind string)) {
	if err == nil {
		return
	}
	if ie, ok := err.(*injectedError); ok {
		fn(ie.kind)
	}
	if err == ErrKilled {
		fn("killed")
	}
	switch u := err.(type) {
	case interface{ Unwrap() error }:
		walkFaults(u.Unwrap(), fn)
	case interface{ Unwrap() []error }:
		for _, e := range u.Unwrap() {
			walkFaults(e, fn)
		}
	}
}

// commitUncertain reports whether err leaves the failed op's WAL commit in
// doubt. Manifest installs and page appends happen only on the maintenance
// path, which runs after the op's own commit returned durable — an error
// carrying only those kinds means the write itself stands and will replay.
// Commit-path kinds (failed commit fsync, failed group fsync, torn append)
// mean the commit may be lost; so does a kill, when it fired on a WAL op.
func (h *harness) commitUncertain(err error) bool {
	uncertain := false
	walkFaults(err, func(kind string) {
		switch kind {
		case KindCommitFsync, KindSyncWAL, KindTornAppend:
			uncertain = true
		case "killed":
			switch h.control.KillOp() {
			case OpAppendWAL, OpSyncWAL:
				uncertain = true
			}
		}
	})
	return uncertain
}

// markFailedWrite records a failed upsert/insert in the model. When the
// commit is in doubt the write becomes an on-disk-WAL-only maybe (the
// non-batched path never applies a failed commit to the memory image).
// When only the maintenance path failed, the commit stands: under the Seq
// profile that classification is airtight (no background workers, so the
// fault provably fired inside this op's post-commit flush) and the write is
// acknowledged outright; under Conc a background worker's sticky error can
// surface on an op whose own fate differs, so the write stays a maybe that
// is allowed to be visible.
func (h *harness) markFailedWrite(id uint64, rec []byte, err error) {
	switch {
	case h.commitUncertain(err):
		h.model.FailedWrite(id, rec, false)
	case h.workers == 0:
		h.model.AckWrite(id, rec)
	default:
		h.model.FailedWrite(id, rec, true)
	}
}

// markFailedDelete is markFailedWrite for deletes.
func (h *harness) markFailedDelete(id uint64, err error) {
	switch {
	case h.commitUncertain(err):
		h.model.FailedDelete(id, false)
	case h.workers == 0:
		h.model.AckDelete(id)
	default:
		h.model.FailedDelete(id, true)
	}
}

// workload op kinds, drawn by weight.
type wop int

const (
	wUpsert wop = iota
	wInsert
	wDelete
	wGet
	wBatch
	wQuery
	wScan
	wFlush
	wSoftCrash
)

var opWeights = []struct {
	op wop
	w  int
}{
	{wUpsert, 30}, {wInsert, 13}, {wDelete, 10}, {wGet, 22},
	{wBatch, 9}, {wQuery, 6}, {wScan, 3}, {wFlush, 3}, {wSoftCrash, 4},
}

type harness struct {
	cfg     Config
	trace   *Trace
	model   *Model
	control *Control
	sleeper *SimSleeper
	sched   *Sched

	wrng    *rng // workload stream
	sessRng *rng // per-session policy (kill points)
	imgRng  *rng // crash-image tail survival

	strategy   lsmstore.Strategy
	gc         lsmstore.GroupCommitMode
	validation lsmstore.ValidationMethod
	shards     int
	workers    int
	keySpace   int
	readCache  bool
	adm        *admission.Controller // nil when the admission dimension is off

	creation    int64
	dir         string
	gen         int
	sessions    int
	kills       int
	opsExecuted int
	db          *lsmstore.DB
}

// Run executes one simulated run and returns its Report. The returned
// error covers harness infrastructure only (scratch directory, snapshot
// I/O); store-vs-model violations land in Report.Verdict with
// Report.Failed set.
func Run(cfg Config) (*Report, error) {
	if cfg.Dir == "" {
		return nil, errors.New("dst: Config.Dir is required")
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 12
	}

	root := newRNG(mix64(uint64(cfg.Seed) ^ 0xD57D57D5D57D57D5))
	cfgRng := root.fork("config")

	h := &harness{
		cfg:     cfg,
		trace:   NewTrace(cfg.RecordTrace),
		model:   NewModel(),
		sleeper: NewSimSleeper(),
		wrng:    root.fork("workload"),
		sessRng: root.fork("session"),
		imgRng:  root.fork("image"),
	}

	strategies := []lsmstore.Strategy{
		lsmstore.Eager, lsmstore.Validation, lsmstore.MutableBitmap, lsmstore.DeletedKey,
	}
	h.strategy = strategies[cfgRng.intn(len(strategies))]
	switch h.strategy {
	case lsmstore.Eager:
		h.validation = lsmstore.NoValidation
	case lsmstore.DeletedKey:
		// Timestamp validation is unsound for the deleted-key strategy
		// (its secondaries have no timestamps to check against); queries
		// must validate directly or via the deleted-key trees.
		h.validation = lsmstore.DirectValidation
	default:
		h.validation = lsmstore.TimestampValidation
	}
	h.gc = lsmstore.GroupCommitOn
	if cfgRng.chance(0.25) {
		h.gc = lsmstore.GroupCommitOff
	}
	h.keySpace = 80 + cfgRng.intn(160)
	h.shards, h.workers = 1, 0
	perturb := false
	if cfg.Profile == Conc {
		h.workers = 2
		perturb = true
		if cfgRng.chance(0.5) {
			h.shards = 2
		}
	}
	// Drawn last so adding it did not reshuffle the existing corpus'
	// configurations. The cache is deliberately tiny relative to the
	// keyspace, so runs with it on cross eviction as well as
	// fill/invalidate/crash paths while the model checks every read.
	h.readCache = cfgRng.chance(0.5)
	// Admission is drawn after readCache for the same corpus-stability
	// reason. The controller is configured with no queue (negative
	// MaxQueue) so shed decisions resolve immediately — no timers, no
	// goroutines — which keeps runs deterministic: a workload-stream draw
	// in step decides when the budget is artificially exhausted.
	if cfgRng.chance(0.5) {
		h.adm = admission.New(admission.Config{Budget: 1, MaxQueue: -1})
	}

	var inj Injector = NoFaults{}
	if cfg.FaultRate > 0 {
		inj = SeededInjector{Seed: mix64(uint64(cfg.Seed) ^ 0xFA017FA017), Rate: cfg.FaultRate}
	}
	h.control = NewControl(h.trace, inj, h.sleeper)
	if cfg.Suppress != nil {
		h.control.SetSuppress(cfg.Suppress)
	}
	schedTrace := h.trace
	if cfg.Profile == Conc {
		schedTrace = nil // interleaving-dependent; keep the trace honest
	}
	h.sched = NewSched(mix64(uint64(cfg.Seed)^0x5C4ED5C4ED), perturb, schedTrace, h.sleeper)

	h.dir = filepath.Join(cfg.Dir, "g0000")
	if err := os.MkdirAll(h.dir, 0o755); err != nil {
		return nil, err
	}
	h.trace.Addf("run strategy=%v gc=%v shards=%d keyspace=%d readcache=%s admission=%s",
		h.strategy, h.gc, h.shards, h.keySpace, onOff(h.readCache), onOff(h.adm != nil))

	report := &Report{
		Seed:    cfg.Seed,
		Profile: cfg.Profile,
		Setup: fmt.Sprintf("strategy=%v gc=%v shards=%d workers=%d keyspace=%d readcache=%s admission=%s",
			h.strategy, h.gc, h.shards, h.workers, h.keySpace, onOff(h.readCache), onOff(h.adm != nil)),
		Verdict: "ok",
	}
	err := h.run()
	var cf *checkFailure
	if errors.As(err, &cf) {
		report.Failed = true
		report.Verdict = cf.msg
		err = nil
	}
	if h.db != nil { // abandoned on a failure path; release handles
		h.control.Detach()
		_ = h.db.Close()
		h.db = nil
	}
	if h.adm != nil {
		h.adm.Close()
	}
	report.Ops = h.opsExecuted
	report.Sessions = h.sessions
	report.Kills = h.kills
	report.TraceHash = h.trace.Hash()
	report.TraceLen = h.trace.Len()
	report.Trace = h.trace.Events()
	report.Faults = h.control.Fired()
	return report, err
}

// run is the session loop: open, reconcile, drive until crash or budget
// exhaustion, repeat; finish with a quiet verification pass.
func (h *harness) run() error {
	opsLeft := h.cfg.Ops
	for {
		if err := h.openSession(); err != nil {
			return err
		}
		if err := h.reconcile(); err != nil {
			return err
		}
		if opsLeft <= 0 || h.sessions >= h.cfg.MaxSessions {
			h.control.SetQuiet(true)
			h.trace.Add("final close")
			err := h.db.Close()
			h.db = nil
			if err != nil {
				return failf("final close failed: %v", err)
			}
			return nil
		}
		h.sessions++
		if err := h.drive(&opsLeft); err != nil {
			return err
		}
	}
}

// openSession opens the current generation directory quietly (no faults,
// no kill: injecting into Open would probe a different contract) and arms
// the configured bug.
func (h *harness) openSession() error {
	h.control.Rearm(0)
	h.control.SetQuiet(true)
	h.trace.Addf("open g%04d", h.gen)
	db, err := lsmstore.Open(h.options())
	if err != nil {
		return failf("reopen of g%04d failed: %v", h.gen, err)
	}
	h.db = db
	if h.cfg.Bug == BugKeepCommit {
		if db.NumShards() == 1 {
			db.Dataset().Log().SetUnsafeKeepCommitOnFailedFsync(true)
		} else {
			for i := 0; i < db.NumShards(); i++ {
				db.Shard(i).Log().SetUnsafeKeepCommitOnFailedFsync(true)
			}
		}
	}
	return nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

func (h *harness) options() lsmstore.Options {
	var rc lsmstore.ReadCacheOptions
	if h.readCache {
		// Small enough that a run's keyspace does not fit: eviction runs
		// alongside invalidation, and a stale survivor would be caught by
		// the model on the very next read of that key.
		rc = lsmstore.ReadCacheOptions{Bytes: 8 << 10, Segments: 2}
	}
	return lsmstore.Options{
		ReadCache: rc,
		Strategy:  h.strategy,
		Secondaries: []lsmstore.SecondaryIndex{
			{Name: "user", Extract: workload.UserIDOf},
		},
		FilterExtract:      workload.CreationOf,
		Backend:            lsmstore.FileBackend,
		Dir:                h.dir,
		MemoryBudget:       8 << 10, // tiny: every run crosses flush and merge paths
		CacheBytes:         1 << 20,
		PageSize:           4 << 10,
		Seed:               5,
		GroupCommit:        h.gc,
		Shards:             h.shards,
		MaintenanceWorkers: h.workers,
		WrapDevice:         h.control.Wrap,
		Sleeper:            h.sleeper,
		Yield:              h.sched.Yield,
	}
}

// nextKillAt draws the session's kill point.
func (h *harness) nextKillAt() int64 {
	if h.cfg.KillAfter > 0 {
		if h.sessions == 1 {
			return h.cfg.KillAfter
		}
		if h.cfg.FaultRate <= 0 {
			return 0
		}
	}
	if h.cfg.FaultRate <= 0 && h.cfg.KillAfter <= 0 {
		return 0
	}
	if !h.sessRng.chance(0.6) {
		return 0
	}
	return int64(40 + h.sessRng.intn(2200))
}

// drive runs workload ops against the open store until the session ends:
// a kill / write failure (hard crash + reopen next loop) or an exhausted
// budget (clean close).
func (h *harness) drive(opsLeft *int) error {
	h.control.Rearm(h.nextKillAt())
	h.control.SetQuiet(false)
	for *opsLeft > 0 {
		*opsLeft--
		h.opsExecuted++
		done, err := h.step()
		if err != nil {
			return err
		}
		if done {
			return h.hardCrash()
		}
	}
	h.trace.Add("close")
	err := h.db.Close()
	h.db = nil
	if err != nil {
		if h.control.Killed() {
			return h.hardCrash()
		}
		if !faultInduced(err) {
			return failf("close failed without an injected fault: %v", err)
		}
		// An injected fault surfaced in Close's persist path: legal. The
		// directory state is whatever the fault left; the next loop
		// iteration reopens and reconciles it.
		h.trace.Add("close-err")
	}
	return nil
}

// hardCrash simulates the process dying: snapshot the crash image, advance
// to the next generation, release the dead store's handles.
func (h *harness) hardCrash() error {
	h.control.Kill()
	h.kills++
	next := filepath.Join(h.cfg.Dir, fmt.Sprintf("g%04d", h.gen+1))
	if err := os.MkdirAll(next, 0o755); err != nil {
		return err
	}
	if err := snapshotCrashImage(h.dir, next, h.control, h.imgRng); err != nil {
		return err
	}
	h.control.Detach()
	if h.db != nil {
		_ = h.db.Close()
		h.db = nil
	}
	h.gen++
	h.dir = next
	h.trace.Addf("crash -> g%04d", h.gen)
	return nil
}

// reconcile resolves every key's indeterminacy against the reopened store
// (kills and faults may or may not have persisted unacknowledged writes),
// then runs the strict full-image checks: with every key certain again,
// point reads, the secondary index, and the filter scan must match the
// model exactly.
func (h *harness) reconcile() error {
	for _, id := range h.model.Keys() {
		obs, err := h.observe(id)
		if err != nil {
			return err
		}
		if !h.model.ResolveHard(id, obs) {
			return failf("g%04d reopen: key %d observed %s, model allows %s",
				h.gen, id, obs, h.model.Describe(id))
		}
	}
	return h.fullCheck("reopen")
}

func (h *harness) observe(id uint64) (valState, error) {
	rec, found, err := h.db.Get(pkOf(id))
	if err != nil {
		return valState{}, failf("get %d failed: %v", id, err)
	}
	return valState{present: found, val: string(rec)}, nil
}

// fullCheck compares the store's whole observable image — filter scan and
// secondary index — against the model. Only valid when every key is
// certain.
func (h *harness) fullCheck(when string) error {
	if !h.model.AllCertain() {
		return fmt.Errorf("dst: internal: fullCheck with uncertain keys")
	}
	expected := map[string]string{}
	for _, id := range h.model.Keys() {
		if s := h.model.Certain(id); s.present {
			expected[string(pkOf(id))] = s.val
		}
	}

	scanned := map[string]string{}
	err := h.db.FilterScan(0, 1<<62, func(pk, rec []byte) {
		scanned[string(pk)] = string(rec)
	})
	if err != nil {
		return failf("%s: filter scan failed: %v", when, err)
	}
	if diff := mapDiff(expected, scanned); diff != "" {
		return failf("%s: filter scan diverged from model: %s", when, diff)
	}

	q, err := h.db.SecondaryQuery("user", workload.UserKey(0), workload.UserKey(39),
		lsmstore.QueryOptions{Validation: h.validation})
	if err != nil {
		return failf("%s: secondary query failed: %v", when, err)
	}
	secondary := map[string]string{}
	for _, r := range q.Records {
		secondary[string(r.PK)] = string(r.Value)
	}
	if diff := mapDiff(expected, secondary); diff != "" {
		return failf("%s: secondary index diverged from model: %s", when, diff)
	}
	return nil
}

// mapDiff returns "" when the maps match, else a description of the first
// few differences in sorted-key order.
func mapDiff(want, got map[string]string) string {
	keys := map[string]bool{}
	for k := range want {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var diffs []string
	for _, k := range sorted {
		w, wok := want[k]
		g, gok := got[k]
		if wok == gok && w == g {
			continue
		}
		diffs = append(diffs, fmt.Sprintf("key %x: want %v/%x got %v/%x", k, wok, w, gok, g))
		if len(diffs) >= 3 {
			diffs = append(diffs, "...")
			break
		}
	}
	if len(diffs) == 0 {
		return ""
	}
	return fmt.Sprint(diffs)
}

// failWrite handles the first acknowledged-path failure of a session: the
// error must trace back to injection or the kill switch, and an in-process
// crash-recover must then show only legal states — in particular, a commit
// whose fsync failed must NOT be replayed unless the live memory image
// legitimately held it (the keep-commit-on-failed-fsync detector).
func (h *harness) failWrite(err error) error {
	if !faultInduced(err) {
		return failf("write failed without an injected fault: %v", err)
	}
	h.trace.Add("op-fail " + faultClass(err))
	h.db.Crash()
	if rerr := h.db.Recover(); rerr != nil {
		return failf("recover after failed write: %v", rerr)
	}
	for _, id := range h.model.Keys() {
		obs, oerr := h.observe(id)
		if oerr != nil {
			return oerr
		}
		if !h.model.CheckSoft(id, obs) {
			return failf("after crash-recover, key %d observed %s, model allows %s (failed commit replayed?)",
				id, obs, h.model.Describe(id))
		}
	}
	return nil
}

func faultClass(err error) string {
	if errors.Is(err, ErrKilled) {
		return "killed"
	}
	var ie *injectedError
	if errors.As(err, &ie) {
		return ie.kind
	}
	return "other"
}

// markBatchMut records one predicted mutation of a failed batch: ack marks
// it acknowledged outright, otherwise it becomes a maybe whose inMem flag
// says whether it may legitimately be visible after an in-process
// crash-recover.
func (h *harness) markBatchMut(isDelete bool, id uint64, val []byte, ack, inMem bool) {
	if isDelete {
		if ack {
			h.model.AckDelete(id)
		} else {
			h.model.FailedDelete(id, inMem)
		}
		return
	}
	if ack {
		h.model.AckWrite(id, val)
	} else {
		h.model.FailedWrite(id, val, inMem)
	}
}

func pkOf(id uint64) []byte { return workload.Tweet{ID: id}.PK() }

// blindDeletes reports whether the strategy deletes without an existence
// check: Validation and DeletedKey always log anti-matter and report the
// delete applied; Eager and MutableBitmap look the key up first and ignore
// deletes of absent keys.
func (h *harness) blindDeletes() bool {
	return h.strategy == lsmstore.Validation || h.strategy == lsmstore.DeletedKey
}

func (h *harness) key() uint64 { return uint64(1 + h.wrng.intn(h.keySpace)) }

func (h *harness) tweet(id uint64) workload.Tweet {
	h.creation++
	msg := make([]byte, 8+h.wrng.intn(16))
	for i := range msg {
		msg[i] = byte('a' + h.wrng.intn(26))
	}
	return workload.Tweet{
		ID:       id,
		UserID:   uint32(h.wrng.intn(40)),
		Creation: h.creation,
		Message:  msg,
	}
}

func (h *harness) drawOp() wop {
	total := 0
	for _, e := range opWeights {
		total += e.w
	}
	n := h.wrng.intn(total)
	for _, e := range opWeights {
		if n < e.w {
			return e.op
		}
		n -= e.w
	}
	return wUpsert
}

// stepAdmission runs one deterministic admission decision ahead of a
// workload op. A workload-stream draw picks shed steps: the harness
// exhausts the one-slot budget itself, verifies the next arrival is shed
// immediately (the queue is disabled, so no timers or goroutines are
// involved), and skips the op — the model is untouched, mirroring how a
// shed request never reaches the engine. All other steps take the
// fast-path admit and must leave the weighted in-flight gauge at zero.
// handled=true means this step was consumed by a shed.
func (h *harness) stepAdmission() (handled bool, err error) {
	if h.wrng.chance(0.15) {
		block, err := h.adm.Acquire(admission.ClassWrite, "")
		if err != nil {
			return false, failf("admission blocker acquire failed: %v", err)
		}
		_, shedErr := h.adm.Acquire(admission.ClassRead, "")
		block()
		if !errors.Is(shedErr, admission.ErrOverloaded) {
			return false, failf("admission over budget returned %v, want ErrOverloaded", shedErr)
		}
		h.trace.Add("op shed")
		return true, nil
	}
	release, err := h.adm.Acquire(admission.ClassWrite, "")
	if err != nil {
		return false, failf("admission acquire with free budget failed: %v", err)
	}
	release()
	if snap := h.adm.Snapshot(); snap.InFlight != 0 {
		return false, failf("admission in-flight = %d after release, want 0", snap.InFlight)
	}
	return false, nil
}

// step executes one workload op. done=true ends the session (a fault or
// kill surfaced); err is a verdict or infrastructure error.
func (h *harness) step() (bool, error) {
	if h.adm != nil {
		handled, err := h.stepAdmission()
		if handled || err != nil {
			return false, err
		}
	}
	switch h.drawOp() {
	case wUpsert:
		id := h.key()
		rec := h.tweet(id).Encode()
		h.trace.Addf("op upsert %d", id)
		if err := h.db.Upsert(pkOf(id), rec); err != nil {
			h.markFailedWrite(id, rec, err)
			return true, h.failWrite(err)
		}
		h.model.AckWrite(id, rec)

	case wInsert:
		id := h.key()
		rec := h.tweet(id).Encode()
		vis := h.model.Visible(id)
		h.trace.Addf("op insert %d", id)
		ok, err := h.db.Insert(pkOf(id), rec)
		if err != nil {
			// A duplicate insert logs nothing — its maybeFlush can still
			// fail, with no mutation to record.
			if !vis.present {
				h.markFailedWrite(id, rec, err)
			}
			return true, h.failWrite(err)
		}
		if ok == vis.present {
			return false, failf("insert %d returned applied=%v but key is %s", id, ok, vis)
		}
		if ok {
			h.model.AckWrite(id, rec)
		}

	case wDelete:
		id := h.key()
		vis := h.model.Visible(id)
		applies := vis.present || h.blindDeletes()
		h.trace.Addf("op delete %d", id)
		ok, err := h.db.Delete(pkOf(id))
		if err != nil {
			if applies {
				h.markFailedDelete(id, err)
			}
			return true, h.failWrite(err)
		}
		if ok != applies {
			return false, failf("delete %d returned applied=%v but key is %s", id, ok, vis)
		}
		if ok {
			h.model.AckDelete(id)
		}

	case wGet:
		id := h.key()
		h.trace.Addf("op get %d", id)
		obs, err := h.observe(id)
		if err != nil {
			return false, err
		}
		if want := h.model.Visible(id); !obs.equal(want) {
			return false, failf("get %d observed %s, expected %s", id, obs, want)
		}

	case wBatch:
		return h.stepBatch()

	case wQuery:
		lo := uint32(h.wrng.intn(40))
		hi := lo + uint32(h.wrng.intn(8))
		h.trace.Addf("op query %d-%d", lo, hi)
		q, err := h.db.SecondaryQuery("user", workload.UserKey(lo), workload.UserKey(hi),
			lsmstore.QueryOptions{Validation: h.validation})
		if err != nil {
			return false, failf("secondary query failed: %v", err)
		}
		got := map[string]string{}
		for _, r := range q.Records {
			got[string(r.PK)] = string(r.Value)
		}
		want := map[string]string{}
		for _, id := range h.model.Keys() {
			vis := h.model.Visible(id)
			if !vis.present {
				continue
			}
			u, uok := workload.UserIDOf([]byte(vis.val))
			if !uok {
				continue
			}
			uid := uint32(u[0])<<24 | uint32(u[1])<<16 | uint32(u[2])<<8 | uint32(u[3])
			if uid >= lo && uid <= hi {
				want[string(pkOf(id))] = vis.val
			}
		}
		if diff := mapDiff(want, got); diff != "" {
			return false, failf("secondary query %d-%d diverged from model: %s", lo, hi, diff)
		}

	case wScan:
		h.trace.Add("op scan")
		got := map[string]string{}
		if err := h.db.FilterScan(0, 1<<62, func(pk, rec []byte) {
			got[string(pk)] = string(rec)
		}); err != nil {
			return false, failf("filter scan failed: %v", err)
		}
		want := map[string]string{}
		for _, id := range h.model.Keys() {
			if vis := h.model.Visible(id); vis.present {
				want[string(pkOf(id))] = vis.val
			}
		}
		if diff := mapDiff(want, got); diff != "" {
			return false, failf("filter scan diverged from model: %s", diff)
		}

	case wFlush:
		h.trace.Add("op flush")
		if err := h.db.Flush(); err != nil {
			return true, h.failWrite(err)
		}

	case wSoftCrash:
		h.trace.Add("op soft-crash")
		h.db.Crash()
		if err := h.db.Recover(); err != nil {
			return false, failf("recover after soft crash: %v", err)
		}
		// Healthy soft crash: every key is certain, so the replayed state
		// must match the model exactly.
		for _, id := range h.model.Keys() {
			obs, err := h.observe(id)
			if err != nil {
				return false, err
			}
			if want := h.model.Visible(id); !obs.equal(want) {
				return false, failf("after soft crash, key %d observed %s, expected %s", id, obs, want)
			}
		}
	}
	return false, nil
}

// stepBatch applies a small mixed batch through ApplyBatchResults. The
// per-mutation applied flags are predicted by running the mutations
// against the model's exact visible chain; on a batch failure, mutations
// the engine reports as applied stay visible in memory unacknowledged
// (inMem maybes), while the rest may at most have reached the on-disk WAL.
func (h *harness) stepBatch() (bool, error) {
	n := 1 + h.wrng.intn(5)
	muts := make([]lsmstore.Mutation, 0, n)
	ids := make([]uint64, 0, n)
	vals := make([][]byte, 0, n)
	predicted := make([]bool, 0, n)
	running := map[uint64]valState{}
	visible := func(id uint64) valState {
		if s, ok := running[id]; ok {
			return s
		}
		return h.model.Visible(id)
	}
	for i := 0; i < n; i++ {
		id := h.key()
		if h.wrng.chance(0.3) {
			muts = append(muts, lsmstore.Mutation{Op: lsmstore.OpDelete, PK: pkOf(id)})
			ids = append(ids, id)
			vals = append(vals, nil)
			applies := visible(id).present || h.blindDeletes()
			predicted = append(predicted, applies)
			if applies {
				running[id] = valState{}
			}
		} else {
			rec := h.tweet(id).Encode()
			muts = append(muts, lsmstore.Mutation{Op: lsmstore.OpUpsert, PK: pkOf(id), Record: rec})
			ids = append(ids, id)
			vals = append(vals, rec)
			predicted = append(predicted, true)
			running[id] = valState{present: true, val: string(rec)}
		}
	}
	h.trace.Addf("op batch n=%d", n)
	manifestsBefore := h.control.Manifests()
	applied, err := h.db.ApplyBatchResults(muts)
	if err != nil {
		// Classify each predicted mutation of the failed batch.
		//
		// grouped: one covering fsync for the whole batch (it runs even
		// after a mid-batch error and zeroes applied on failure). Without
		// grouping — gc off, or the mutable-bitmap strategy, whose batch
		// handle is nil — every mutation carries its own durable commit,
		// so reported-applied means committed no matter what failed later.
		//
		// uncertain: the error carries commit-path evidence, so the
		// covering fsync (or an individual commit) failed and the affected
		// records were dropped from the memory image. Otherwise only the
		// maintenance path failed and every logged record is durably
		// committed; a predicted-but-unreported mutation is either the
		// errored one (applied, its flag just never set) or one after it
		// (never logged) — an in-memory maybe covers both fates.
		//
		// flushed: a mid-batch flush installed a manifest. A grouped
		// batch's writes sit in the memory components before their
		// covering fsync, so that flush may have made them
		// component-durable even though the batch commit failed.
		//
		// On a sharded store a batch splits into independent per-shard
		// sub-batches, and only the failing shard's applied entries are
		// zeroed — so a reported-applied mutation of an errored batch is
		// durably committed in every mode. The wal-only verdict is kept
		// only when it is provable: single shard, commit-path failure, no
		// mid-batch install; a multi-shard batch cannot attribute the
		// commit failure to this mutation's shard.
		uncertain := h.commitUncertain(err)
		flushed := h.control.Manifests() > manifestsBefore
		for i := range muts {
			if !predicted[i] {
				continue // never applied, never logged
			}
			isDel := muts[i].Op == lsmstore.OpDelete
			ok := len(applied) > i && applied[i]
			switch {
			case ok:
				h.markBatchMut(isDel, ids[i], vals[i], h.workers == 0, true)
			case uncertain && !flushed && h.shards == 1:
				h.markBatchMut(isDel, ids[i], vals[i], false, false)
			default:
				h.markBatchMut(isDel, ids[i], vals[i], false, true)
			}
		}
		return true, h.failWrite(err)
	}
	for i := range muts {
		if applied[i] != predicted[i] {
			return false, failf("batch mutation %d (key %d) applied=%v, predicted %v",
				i, ids[i], applied[i], predicted[i])
		}
		if !applied[i] {
			continue
		}
		if muts[i].Op == lsmstore.OpDelete {
			h.model.AckDelete(ids[i])
		} else {
			h.model.AckWrite(ids[i], vals[i])
		}
	}
	return false, nil
}
