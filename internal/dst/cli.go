package dst

import (
	"fmt"
	"io"
)

// FormatRepro renders the one-line lsmdst invocation that reproduces a
// run. Failure output leads with it so a CI log is one copy-paste away
// from a local repro.
func FormatRepro(cfg Config) string {
	s := fmt.Sprintf("go run ./cmd/lsmdst -seed %d -ops %d -fault-rate %g -profile %s",
		cfg.Seed, cfg.Ops, cfg.FaultRate, cfg.Profile)
	if cfg.KillAfter > 0 {
		s += fmt.Sprintf(" -kill-after %d", cfg.KillAfter)
	}
	if cfg.Bug != "" {
		s += " -bug " + cfg.Bug
	}
	return s
}

// RunSeed executes one configured run, prints its outcome to out, and
// returns the report. On failure the output leads with the repro line,
// then the minimized fault schedule (when minimize is set) and the tail
// of the op trace.
func RunSeed(cfg Config, out io.Writer, minimize bool, scratch string) (*Report, error) {
	rep, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	if !rep.Failed {
		fmt.Fprintf(out, "seed %d ok: ops=%d sessions=%d kills=%d faults=%d trace=%d/%016x [%s]\n",
			rep.Seed, rep.Ops, rep.Sessions, rep.Kills, len(ActiveFaults(rep)),
			rep.TraceLen, rep.TraceHash, rep.Setup)
		return rep, nil
	}
	fmt.Fprintf(out, "FAIL: %s\n", FormatRepro(cfg))
	fmt.Fprintf(out, "seed %d [%s]: %s\n", rep.Seed, rep.Setup, rep.Verdict)
	if minimize {
		min, merr := Minimize(cfg, rep, scratch)
		if merr != nil {
			return nil, merr
		}
		rep = min
		fmt.Fprintf(out, "minimized verdict: %s\n", rep.Verdict)
	}
	faults := ActiveFaults(rep)
	fmt.Fprintf(out, "fault schedule (%d):\n", len(faults))
	for _, f := range faults {
		fmt.Fprintf(out, "  %s\n", f)
	}
	if n := len(rep.Trace); n > 0 {
		start := n - 25
		if start < 0 {
			start = 0
		}
		fmt.Fprintf(out, "trace tail (%d of %d events):\n", n-start, n)
		for _, ev := range rep.Trace[start:] {
			fmt.Fprintf(out, "  %s\n", ev)
		}
	}
	return rep, nil
}
