package dst

import (
	"fmt"
	"os"
	"path/filepath"
)

// Minimize greedily shrinks a failing run's fault schedule: one fired
// fault at a time, it re-runs the seed with that fault suppressed and
// keeps the suppression whenever the run still fails. The result is a
// locally-minimal schedule — every remaining fault is necessary for the
// failure (removing any single one makes the run pass).
//
// Minimization is best-effort: decisions are keyed by per-operation
// ordinals, so suppressing a fault usually leaves the rest of the
// schedule intact, but a suppression that changes the op stream can shift
// later decisions. The greedy loop only ever keeps suppressions that
// preserve the failure, so the returned report always reproduces it.
//
// scratch is a directory for the trial runs' store generations; each
// trial uses its own subdirectory.
func Minimize(cfg Config, rep *Report, scratch string) (*Report, error) {
	if !rep.Failed {
		return rep, nil
	}
	suppress := map[int64]bool{}
	for k := range cfg.Suppress {
		suppress[k] = true
	}
	best := rep
	trial := 0
	for _, f := range rep.Faults {
		if f.Suppressed || suppress[f.Index] {
			continue
		}
		trial++
		candidate := map[int64]bool{f.Index: true}
		for k := range suppress {
			candidate[k] = true
		}
		tcfg := cfg
		tcfg.Suppress = candidate
		tcfg.Dir = filepath.Join(scratch, fmt.Sprintf("min%03d", trial))
		if err := os.MkdirAll(tcfg.Dir, 0o755); err != nil {
			return nil, err
		}
		trep, err := Run(tcfg)
		if err != nil {
			return nil, err
		}
		if trep.Failed {
			suppress = candidate
			best = trep
		}
	}
	return best, nil
}

// ActiveFaults returns the faults of a report that actually applied
// (fired and not suppressed) — the minimized schedule to print.
func ActiveFaults(rep *Report) []FiredFault {
	var out []FiredFault
	for _, f := range rep.Faults {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}
