package dst

import (
	"fmt"
	"sort"
)

// valState is one possible state of a key: present with a value, or absent.
type valState struct {
	present bool
	val     string
}

func (v valState) String() string {
	if !v.present {
		return "<absent>"
	}
	return fmt.Sprintf("%x", v.val)
}

func (v valState) equal(o valState) bool {
	return v.present == o.present && (!v.present || v.val == o.val)
}

// maybeWrite is a write that was issued but not acknowledged: the engine
// reported failure, so the store promised only "not guaranteed, retriable,
// not certainly absent". inMem marks writes the live session still holds
// in its memory components (failed batched commits stay applied); those
// may surface after an in-process crash-recover (a flush may have made
// them durable), while non-inMem failures may only ever resurface from the
// on-disk WAL after a process kill.
type maybeWrite struct {
	s     valState
	inMem bool
}

type keyEntry struct {
	certain valState
	maybes  []maybeWrite
}

// Model is the in-memory mirror the simulated store is checked against: a
// plain map of key states plus, per key, the set of unacknowledged writes
// whose fate is still open. Three check regimes follow from the engine's
// durability contract:
//
//   - In-session, the visible state of a key is exact: the last
//     memory-applied write in order, i.e. the newest inMem maybe, else the
//     acknowledged state.
//   - After an in-process crash-recover (DB.Crash + DB.Recover), failed
//     commits must have been dropped from the replayed log image, so a key
//     may only show its acknowledged state or an inMem maybe that a flush
//     made durable. A non-inMem maybe appearing here is exactly the
//     historical keep-commit-on-failed-fsync bug.
//   - After a process kill and reopen from a crash image, any maybe may
//     have reached the disk WAL; the observed state resolves the
//     indeterminacy and is folded back into the model.
//
// The model is not goroutine-safe; the harness drives it from the single
// workload goroutine.
type Model struct {
	keys      map[uint64]*keyEntry
	uncertain int // keys with a non-empty maybe set
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{keys: map[uint64]*keyEntry{}} }

func (m *Model) entry(id uint64) *keyEntry {
	e := m.keys[id]
	if e == nil {
		e = &keyEntry{}
		m.keys[id] = e
	}
	return e
}

func (m *Model) clearMaybes(e *keyEntry) {
	if len(e.maybes) > 0 {
		e.maybes = nil
		m.uncertain--
	}
}

// AckWrite records an acknowledged upsert/insert of val. The durable,
// acknowledged record supersedes every earlier unacknowledged write in WAL
// order, so the maybe set collapses.
func (m *Model) AckWrite(id uint64, val []byte) {
	e := m.entry(id)
	e.certain = valState{present: true, val: string(val)}
	m.clearMaybes(e)
}

// AckDelete records an acknowledged delete.
func (m *Model) AckDelete(id uint64) {
	e := m.entry(id)
	e.certain = valState{}
	m.clearMaybes(e)
}

// FailedWrite records an unacknowledged upsert/insert of val.
func (m *Model) FailedWrite(id uint64, val []byte, inMem bool) {
	e := m.entry(id)
	if len(e.maybes) == 0 {
		m.uncertain++
	}
	e.maybes = append(e.maybes, maybeWrite{s: valState{present: true, val: string(val)}, inMem: inMem})
}

// FailedDelete records an unacknowledged delete.
func (m *Model) FailedDelete(id uint64, inMem bool) {
	e := m.entry(id)
	if len(e.maybes) == 0 {
		m.uncertain++
	}
	e.maybes = append(e.maybes, maybeWrite{inMem: inMem})
}

// Visible returns the state the live session must show for id: the newest
// memory-applied write.
func (m *Model) Visible(id uint64) valState {
	e := m.keys[id]
	if e == nil {
		return valState{}
	}
	for i := len(e.maybes) - 1; i >= 0; i-- {
		if e.maybes[i].inMem {
			return e.maybes[i].s
		}
	}
	return e.certain
}

// CheckSoft reports whether observed is a legal state for id after an
// in-process crash-recover: the acknowledged state, or an inMem maybe that
// a flush may have made durable. The model is not mutated — the on-disk
// WAL keeps its own indeterminacy until a kill resolves it.
func (m *Model) CheckSoft(id uint64, observed valState) bool {
	e := m.keys[id]
	if e == nil {
		return !observed.present
	}
	if observed.equal(e.certain) {
		return true
	}
	for _, mw := range e.maybes {
		if mw.inMem && observed.equal(mw.s) {
			return true
		}
	}
	return false
}

// ResolveHard checks observed against the legal post-kill states of id —
// the acknowledged state or any unacknowledged write — and, when legal,
// folds it back in: the crash image is concrete now, so observed becomes
// the key's certain state and the maybe set collapses.
func (m *Model) ResolveHard(id uint64, observed valState) bool {
	e := m.entry(id)
	legal := observed.equal(e.certain)
	for _, mw := range e.maybes {
		if legal {
			break
		}
		legal = observed.equal(mw.s)
	}
	if !legal {
		return false
	}
	e.certain = observed
	m.clearMaybes(e)
	return true
}

// AllCertain reports whether no key has pending unacknowledged writes —
// the precondition of the strict full-image checks.
func (m *Model) AllCertain() bool { return m.uncertain == 0 }

// Keys returns every key the model has ever seen, sorted (map iteration
// order must never reach a determinism-checked code path).
func (m *Model) Keys() []uint64 {
	ids := make([]uint64, 0, len(m.keys))
	for id := range m.keys {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Certain returns the acknowledged state of id.
func (m *Model) Certain(id uint64) valState {
	e := m.keys[id]
	if e == nil {
		return valState{}
	}
	return e.certain
}

// Describe renders the key's model state for failure messages.
func (m *Model) Describe(id uint64) string {
	e := m.keys[id]
	if e == nil {
		return "untouched"
	}
	s := "certain=" + e.certain.String()
	for _, mw := range e.maybes {
		tag := "wal-only"
		if mw.inMem {
			tag = "in-mem"
		}
		s += fmt.Sprintf(" maybe[%s]=%s", tag, mw.s)
	}
	return s
}
