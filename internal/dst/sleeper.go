package dst

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// SimSleeper is the virtual real-time source of a simulated run: a
// metrics.Sleeper whose monotonic reading only moves when the harness
// advances it, and whose timers fire as part of that advance instead of on
// the runtime's wall-clock wheel. Installing it (lsmstore.Options.Sleeper)
// pulls the group-commit hold-open window and the backpressure stall
// accounting onto the simulated timeline, so "2ms of leader patience" is a
// seeded schedule decision, not a race against the host machine.
type SimSleeper struct {
	mu     sync.Mutex
	now    time.Duration
	seq    int64
	timers []*simTimer
}

type simTimer struct {
	at    time.Duration
	seq   int64 // arrival order breaks deadline ties deterministically
	fn    func()
	fired bool
}

// NewSimSleeper returns a sleeper at virtual time zero.
func NewSimSleeper() *SimSleeper { return &SimSleeper{} }

var _ metrics.Sleeper = (*SimSleeper)(nil)

// Monotonic returns the current virtual reading.
func (s *SimSleeper) Monotonic() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// AfterFunc schedules fn to run once virtual time reaches now+d. Like
// time.AfterFunc, fn runs on its own goroutine. The returned stop reports
// false when fn already ran.
func (s *SimSleeper) AfterFunc(d time.Duration, fn func()) func() bool {
	s.mu.Lock()
	t := &simTimer{at: s.now + d, seq: s.seq, fn: fn}
	s.seq++
	s.timers = append(s.timers, t)
	s.mu.Unlock()
	if d <= 0 {
		s.Advance(0) // already due; fire on the usual path
	}
	return func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		if t.fired {
			return false
		}
		t.fired = true // cancelled; Advance will skip it
		return true
	}
}

// Advance moves virtual time forward by d, firing every timer whose
// deadline is reached in deadline-then-arrival order.
func (s *SimSleeper) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now + d
	for {
		idx := -1
		for i, t := range s.timers {
			if t.fired {
				continue
			}
			if t.at > target {
				continue
			}
			if idx == -1 || t.at < s.timers[idx].at ||
				(t.at == s.timers[idx].at && t.seq < s.timers[idx].seq) {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		t := s.timers[idx]
		t.fired = true
		if t.at > s.now {
			s.now = t.at
		}
		fn := t.fn
		s.mu.Unlock()
		go fn()
		s.mu.Lock()
	}
	if target > s.now {
		s.now = target
	}
	// Compact: drop fired timers so long runs don't accumulate them.
	live := s.timers[:0]
	for _, t := range s.timers {
		if !t.fired {
			live = append(live, t)
		}
	}
	s.timers = live
	s.mu.Unlock()
}
