package dst

// Deterministic pseudo-randomness for the simulation harness. The harness
// cannot use math/rand's global state (shared, lockstep-breaking) and must
// stay bit-stable across Go releases, so it carries its own splitmix64
// stream — the same generator used to seed xoshiro in the reference
// implementations, with full 64-bit period and no shared state.

// rng is a seeded splitmix64 stream. Not safe for concurrent use; fork
// independent streams per goroutine or per purpose instead.
type rng struct{ state uint64 }

// newRNG returns a stream seeded with seed.
func newRNG(seed uint64) *rng { return &rng{state: seed} }

// next returns the next 64 pseudo-random bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a pseudo-random int in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("dst: intn on non-positive n")
	}
	return int(r.next() % uint64(n))
}

// float returns a pseudo-random float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// chance reports true with probability p.
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.float() < p
}

// fork derives an independent stream keyed by label, so adding draws to
// one purpose never shifts the stream of another.
func (r *rng) fork(label string) *rng {
	h := fnvMix(r.next(), label)
	return newRNG(h)
}

// fnvMix folds label into h with FNV-1a.
func fnvMix(h uint64, label string) uint64 {
	const prime = 1099511628211
	if h == 0 {
		h = 14695981039346656037
	}
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime
	}
	return h
}

// mix64 is a stateless splitmix64 finalizer, for hashing a counter value
// into well-distributed bits without carrying a stream.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
