package dst

import (
	"errors"
	"testing"
	"time"
)

// Unit tests for the harness's own building blocks. The end-to-end
// batteries (corpus, determinism, bug catch, scripted fault paths) live in
// lsmstore, where the real store is in scope; everything here must hold
// for those batteries to mean anything.

// TestSeededInjectorStateless: a decision is a pure function of
// (shard, op, ord) — the minimizer's stability contract.
func TestSeededInjectorStateless(t *testing.T) {
	inj := SeededInjector{Seed: 0xABCDEF, Rate: 25} // high rate: plenty of firings
	type key struct {
		shard int
		op    string
		ord   int64
	}
	ops := []string{OpAppendWAL, OpSyncWAL, OpSaveManifest, OpAppendPage}
	first := map[key]string{}
	fired := 0
	for shard := 0; shard < 2; shard++ {
		for _, op := range ops {
			for ord := int64(0); ord < 200; ord++ {
				f, ok := inj.Decide(shard, op, ord)
				if ok {
					fired++
				}
				first[key{shard, op, ord}] = f.String()
			}
		}
	}
	if fired == 0 {
		t.Fatal("injector never fires even at rate 25")
	}
	// Replay in reverse order: every decision must be identical.
	for shard := 1; shard >= 0; shard-- {
		for i := len(ops) - 1; i >= 0; i-- {
			for ord := int64(199); ord >= 0; ord-- {
				f, _ := inj.Decide(shard, ops[i], ord)
				if want := first[key{shard, ops[i], ord}]; f.String() != want {
					t.Fatalf("decision for (%d,%s,%d) changed: %s != %s", shard, ops[i], ord, f, want)
				}
			}
		}
	}
}

// TestScriptWildcardOrd: Ord -1 matches every occurrence of the op.
func TestScriptWildcardOrd(t *testing.T) {
	s := Script{
		{Shard: 0, Op: OpSaveManifest, Ord: -1, Fault: Fault{Kind: KindManifest}},
		{Shard: 1, Op: OpAppendWAL, Ord: 3, Fault: Fault{Kind: KindTornAppend}},
	}
	for ord := int64(0); ord < 5; ord++ {
		if f, ok := s.Decide(0, OpSaveManifest, ord); !ok || f.Kind != KindManifest {
			t.Fatalf("wildcard missed ord %d", ord)
		}
	}
	if _, ok := s.Decide(1, OpAppendWAL, 2); ok {
		t.Fatal("pinned ord fired on the wrong occurrence")
	}
	if f, ok := s.Decide(1, OpAppendWAL, 3); !ok || f.Kind != KindTornAppend {
		t.Fatal("pinned ord missed its occurrence")
	}
	if _, ok := s.Decide(2, OpSaveManifest, 0); ok {
		t.Fatal("fault fired on the wrong shard")
	}
}

// TestSimSleeperAdvance: due timers fire, undue ones do not, stop cancels,
// and the monotonic reading tracks virtual time only.
func TestSimSleeperAdvance(t *testing.T) {
	s := NewSimSleeper()
	early := make(chan struct{})
	late := make(chan struct{})
	s.AfterFunc(10*time.Millisecond, func() { close(early) })
	s.AfterFunc(50*time.Millisecond, func() { close(late) })
	stopMid := s.AfterFunc(20*time.Millisecond, func() { t.Error("cancelled timer fired") })
	if !stopMid() {
		t.Fatal("stop of a pending timer reported already-fired")
	}

	s.Advance(30 * time.Millisecond)
	<-early
	select {
	case <-late:
		t.Fatal("late timer fired 20ms before its deadline")
	default:
	}
	if got := s.Monotonic(); got != 30*time.Millisecond {
		t.Fatalf("virtual reading %v after advancing 30ms", got)
	}

	s.Advance(30 * time.Millisecond)
	<-late
	if stopMid() {
		t.Fatal("second stop reported a pending timer")
	}
}

// TestModelRegimes walks one key through the three check regimes: exact
// in-session visibility, soft-crash membership (certain ∪ in-mem maybes),
// and hard-crash resolution (certain ∪ all maybes, folding the observation
// back in).
func TestModelRegimes(t *testing.T) {
	m := NewModel()
	const id = 7
	v1, v2, v3 := []byte("v1"), []byte("v2"), []byte("v3")
	st := func(val []byte) valState { return valState{present: true, val: string(val)} }
	absent := valState{}

	m.AckWrite(id, v1)
	if got := m.Visible(id); !got.equal(st(v1)) {
		t.Fatalf("visible after ack: %s", got)
	}
	if !m.AllCertain() {
		t.Fatal("acked write left the model uncertain")
	}

	// A failed commit that never reached memory: invisible live and after
	// a soft crash, but a kill may persist it from the on-disk WAL.
	m.FailedWrite(id, v2, false)
	if got := m.Visible(id); !got.equal(st(v1)) {
		t.Fatalf("wal-only maybe changed live visibility: %s", got)
	}
	if !m.CheckSoft(id, st(v1)) || m.CheckSoft(id, st(v2)) || m.CheckSoft(id, absent) {
		t.Fatal("soft membership wrong for a wal-only maybe")
	}
	if m.AllCertain() {
		t.Fatal("maybe not counted as uncertainty")
	}

	// A failed batched commit that stayed applied in memory: visible live
	// and allowed (not required) after a soft crash.
	m.FailedWrite(id, v3, true)
	if got := m.Visible(id); !got.equal(st(v3)) {
		t.Fatalf("in-mem maybe not visible live: %s", got)
	}
	if !m.CheckSoft(id, st(v3)) || !m.CheckSoft(id, st(v1)) || m.CheckSoft(id, st(v2)) {
		t.Fatal("soft membership wrong with an in-mem maybe")
	}

	// Hard crash: any maybe (or the certain state) may be the survivor;
	// what is observed becomes certain.
	if m.ResolveHard(id, absent) {
		t.Fatal("hard resolution accepted a state no write produced")
	}
	if !m.ResolveHard(id, st(v2)) {
		t.Fatal("hard resolution rejected the wal-only maybe")
	}
	if !m.AllCertain() || !m.Certain(id).equal(st(v2)) {
		t.Fatalf("observation not folded back: %s", m.Describe(id))
	}

	// Deletes mirror writes.
	m.FailedDelete(id, true)
	if got := m.Visible(id); got.present {
		t.Fatalf("in-mem failed delete still visible: %s", got)
	}
	if !m.CheckSoft(id, absent) || !m.CheckSoft(id, st(v2)) {
		t.Fatal("soft membership wrong after an in-mem failed delete")
	}
	if !m.ResolveHard(id, absent) || m.Certain(id).present {
		t.Fatal("hard resolution of the delete failed")
	}
}

// TestModelUntouchedKeys: reads of never-written keys must be absent in
// every regime.
func TestModelUntouchedKeys(t *testing.T) {
	m := NewModel()
	if m.Visible(1).present || !m.CheckSoft(1, valState{}) || m.CheckSoft(1, valState{present: true, val: "x"}) {
		t.Fatal("untouched key has wrong membership")
	}
	if len(m.Keys()) != 0 {
		t.Fatal("reads materialized keys")
	}
}

// TestTraceHash: the hash is a pure function of the event sequence, and
// recording (keep=true) does not change it.
func TestTraceHash(t *testing.T) {
	a, b, c := NewTrace(false), NewTrace(true), NewTrace(false)
	for _, ev := range []string{"open g0000", "op upsert 3", "crash -> g0001"} {
		a.Add(ev)
		b.Add(ev)
	}
	c.Add("open g0000")
	c.Add("op upsert 4")
	if a.Hash() != b.Hash() || a.Len() != b.Len() {
		t.Fatal("keep=true changed the trace hash")
	}
	if a.Hash() == c.Hash() {
		t.Fatal("different event sequences hash equal")
	}
	if got := b.Events(); len(got) != 3 || got[2] != "crash -> g0001" {
		t.Fatalf("recorded events wrong: %v", got)
	}
	if a.Events() != nil {
		t.Fatal("keep=false retained events")
	}
}

// TestWalkFaults: every fault kind in a joined/wrapped error tree is
// visited — errors.As alone stops at the first injectedError, which is
// exactly the bug this helper exists to avoid.
func TestWalkFaults(t *testing.T) {
	err := errors.Join(
		&injectedError{KindManifest},
		errorsWrap(errorsWrap(&injectedError{KindSyncWAL})),
		errorsWrap(ErrKilled),
	)
	seen := map[string]int{}
	walkFaults(err, func(kind string) { seen[kind]++ })
	if seen[KindManifest] != 1 || seen[KindSyncWAL] != 1 || seen["killed"] != 1 {
		t.Fatalf("walk missed faults: %v", seen)
	}
	walkFaults(nil, func(string) { t.Fatal("walk visited a nil error") })
}

func errorsWrap(err error) error { return &wrapped{err} }

type wrapped struct{ inner error }

func (w *wrapped) Error() string { return "wrap: " + w.inner.Error() }
func (w *wrapped) Unwrap() error { return w.inner }
