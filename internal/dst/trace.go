package dst

import (
	"fmt"
	"sync"
)

// Trace accumulates the run's observable schedule — every mutating or
// durability-relevant device operation, every injected fault, every
// harness-level event — as an ordered event stream. Determinism is
// asserted over it: the same seed must produce the same event sequence,
// so the trace keeps a running FNV-1a hash and an event count, and
// optionally the full event list (bounded runs only; sweeps keep just the
// hash).
type Trace struct {
	mu   sync.Mutex
	hash uint64
	n    int
	keep bool
	full []string
}

// NewTrace returns an empty trace; keep retains the full event list.
func NewTrace(keep bool) *Trace {
	return &Trace{hash: 14695981039346656037, keep: keep}
}

// Add appends one event.
func (t *Trace) Add(ev string) {
	t.mu.Lock()
	t.hash = fnvMix(t.hash, ev)
	t.hash = fnvMix(t.hash, "\n")
	t.n++
	if t.keep {
		t.full = append(t.full, ev)
	}
	t.mu.Unlock()
}

// Addf is Add with formatting.
func (t *Trace) Addf(format string, args ...any) {
	t.Add(fmt.Sprintf(format, args...))
}

// Hash returns the running FNV-1a hash of the event stream.
func (t *Trace) Hash() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hash
}

// Len returns the number of events recorded.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Events returns a copy of the full event list (nil unless keep was set).
func (t *Trace) Events() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.full...)
}
