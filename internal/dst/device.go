package dst

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/storage"
)

// ErrKilled is returned by every mutating device operation after the
// simulated process death point: the op never reaches the inner device,
// exactly as if the process had been SIGKILLed before issuing it.
var ErrKilled = errors.New("dst: device killed (simulated crash)")

// injectedError marks an error produced by fault injection rather than the
// real device. The engine must treat it like any other I/O failure.
type injectedError struct{ kind string }

func (e *injectedError) Error() string { return "dst: injected " + e.kind + " fault" }

// Fault kinds. Each models a failure the real device (or the kernel under
// it) can produce, with the same visible contract filedev honors.
const (
	// KindCommitFsync fails an AppendWAL(sync=true) before any byte is
	// written: the record certainly does not survive. Only applicable to
	// sync appends (the per-record-fsync commit path).
	KindCommitFsync = "commit-fsync"
	// KindTornAppend persists a seeded prefix of the record unsynced, then
	// kills the device — the torn-tail crash the WAL decoder must stop at.
	KindTornAppend = "torn-append"
	// KindSyncWAL fails the covering group fsync. Two flavors (Fault.Report):
	// fail-before never issues the fsync (bytes stay volatile); fail-report
	// issues it and lies about the result (bytes are durable, engine must
	// still treat the suffix as indeterminate).
	KindSyncWAL = "syncwal"
	// KindManifest fails SaveManifest before the install barrier: neither
	// the device sync nor the manifest replace happens, the old manifest
	// stays authoritative.
	KindManifest = "manifest"
	// KindPageAppend fails a component page append (maintenance write
	// path: flushes and merges must abort and retry, never install).
	KindPageAppend = "page-append"
	// KindDelaySync advances virtual time before a covering fsync
	// proceeds normally, firing any armed group-commit window timers at
	// an adversarial moment. Requires a SimSleeper; reorders timer-driven
	// work, not data.
	KindDelaySync = "delay-sync"
)

// Device operation names: the shared vocabulary of the op trace and the
// Injector. Only mutating and durability operations are traced and
// faultable; reads pass through untouched.
const (
	OpCreate       = "create"
	OpDelete       = "delete"
	OpAppendPage   = "append-page"
	OpSync         = "sync"
	OpAppendWAL    = "append-wal"
	OpSyncWAL      = "sync-wal"
	OpResetWAL     = "reset-wal"
	OpSaveManifest = "save-manifest"
)

// Fault describes one injected failure.
type Fault struct {
	Kind string
	// Frac tunes kind-specific magnitude: the surviving fraction of a torn
	// append, or the scale of a delayed sync.
	Frac float64
	// Report selects the fail-report flavor of KindSyncWAL.
	Report bool
}

func (f Fault) String() string {
	s := f.Kind
	if f.Kind == KindTornAppend || f.Kind == KindDelaySync {
		s += fmt.Sprintf("(%.3f)", f.Frac)
	}
	if f.Report {
		s += "(report)"
	}
	return s
}

// Injector decides, per device operation, whether a fault fires. ord is
// the per-(shard,op) ordinal of the operation, so a decision is a pure
// function of the operation's identity: suppressing one fired fault during
// minimization does not reshuffle the decisions of operations that still
// occur with the same ordinals.
type Injector interface {
	Decide(shard int, op string, ord int64) (Fault, bool)
}

// NoFaults never fires.
type NoFaults struct{}

func (NoFaults) Decide(int, string, int64) (Fault, bool) { return Fault{}, false }

// ScriptedFault pins one fault to the ord-th occurrence of op on shard.
// An Ord of -1 matches every occurrence.
type ScriptedFault struct {
	Shard int
	Op    string
	Ord   int64
	Fault Fault
}

// Script is an Injector driven by an explicit fault list — unit tests use
// it to place a single failure exactly on the operation under study.
type Script []ScriptedFault

func (s Script) Decide(shard int, op string, ord int64) (Fault, bool) {
	for _, f := range s {
		if f.Shard == shard && f.Op == op && (f.Ord == ord || f.Ord < 0) {
			return f.Fault, true
		}
	}
	return Fault{}, false
}

// SeededInjector fires faults pseudo-randomly, stateless per decision:
// each (shard, op, ord) hashes with Seed into a probability draw and a
// fault pick. Rate scales every base rate (1.0 = defaults, 0 = none).
type SeededInjector struct {
	Seed uint64
	Rate float64
}

func (s SeededInjector) Decide(shard int, op string, ord int64) (Fault, bool) {
	h := mix64(s.Seed ^ mix64(uint64(ord)+1)*0x100000001b3)
	h = fnvMix(h, op)
	h = mix64(h ^ uint64(shard)*0x9e3779b97f4a7c15)
	p := float64(h>>11) / (1 << 53)
	pick := mix64(h)
	frac := float64(pick>>11) / (1 << 53)
	switch op {
	case OpAppendWAL:
		if p < 0.008*s.Rate {
			return Fault{Kind: KindTornAppend, Frac: frac}, true
		}
		if p < 0.020*s.Rate {
			return Fault{Kind: KindCommitFsync}, true
		}
	case OpSyncWAL:
		if p < 0.030*s.Rate {
			return Fault{Kind: KindSyncWAL, Report: pick&1 == 0}, true
		}
		if p < 0.090*s.Rate {
			return Fault{Kind: KindDelaySync, Frac: frac}, true
		}
	case OpSaveManifest:
		if p < 0.050*s.Rate {
			return Fault{Kind: KindManifest}, true
		}
	case OpAppendPage:
		if p < 0.004*s.Rate {
			return Fault{Kind: KindPageAppend}, true
		}
	}
	return Fault{}, false
}

// FiredFault is one injector decision that fired during a run, in firing
// order. Index is its stable identity for suppression (minimization).
type FiredFault struct {
	Index      int64 // decision ordinal, identity for Control.SetSuppress
	OpIndex    int64 // traced-op counter value when it fired
	Shard      int
	Op         string
	Ord        int64 // per-(shard,op) ordinal the decision keyed on
	Fault      Fault
	Suppressed bool
}

func (f FiredFault) String() string {
	sup := ""
	if f.Suppressed {
		sup = " suppressed"
	}
	return fmt.Sprintf("T%d@op%d %s/%d#%d %s%s", f.Index, f.OpIndex, f.Op, f.Shard, f.Ord, f.Fault, sup)
}

// Control is the shared state behind every wrapped shard device of one
// simulated store: the op trace, the fault injector, the kill switch, and
// the per-shard WAL durability ledger the crash-image builder reads.
type Control struct {
	trace   *Trace
	inj     Injector
	sleeper *SimSleeper

	mu        sync.Mutex
	ops       int64
	killAt    int64
	killed    bool
	detached  bool
	quiet     bool
	killOp    string
	manifests int64
	nextIdx   int64
	fired     []FiredFault
	suppress  map[int64]bool
	ordinals  map[ordKey]int64
	wal       map[int]*walState
}

type ordKey struct {
	shard int
	op    string
}

// walState tracks what the WAL file holds vs what an OS-level crash is
// guaranteed to keep: length counts every write()n byte, durable the
// fsync-covered prefix. The gap is the tail a crash image may truncate.
type walState struct{ length, durable int64 }

// NewControl builds a Control. sleeper may be nil (delay-sync faults are
// then discarded); inj must not be nil.
func NewControl(trace *Trace, inj Injector, sleeper *SimSleeper) *Control {
	return &Control{
		trace:    trace,
		inj:      inj,
		sleeper:  sleeper,
		suppress: map[int64]bool{},
		ordinals: map[ordKey]int64{},
		wal:      map[int]*walState{},
	}
}

// SetKillAfter arms the kill switch: the n-th traced operation (1-based)
// fails with ErrKilled and every mutating op after it does too. 0 disarms.
func (c *Control) SetKillAfter(n int64) {
	c.mu.Lock()
	c.killAt = n
	c.mu.Unlock()
}

// SetSuppress marks fired-fault indexes (FiredFault.Index) whose faults
// are decided but not applied — the minimizer's knob.
func (c *Control) SetSuppress(idx map[int64]bool) {
	c.mu.Lock()
	c.suppress = idx
	c.mu.Unlock()
}

// Rearm resets the per-session gates — kill state, detachment, and the
// traced-op counter — for the next store generation of the same run.
// Decision indexes, ordinals, and the trace keep accumulating, so fault
// identities stay stable across sessions.
func (c *Control) Rearm(killAfter int64) {
	c.mu.Lock()
	c.killed = false
	c.detached = false
	c.ops = 0
	c.killAt = killAfter
	c.mu.Unlock()
}

// SetQuiet toggles injection off (tracing and kill enforcement stay on).
// The harness runs Open and final-verification phases quiet: faults there
// would probe a different contract than the one under test.
func (c *Control) SetQuiet(q bool) {
	c.mu.Lock()
	c.quiet = q
	c.mu.Unlock()
}

// Kill flips the device into the dead state immediately.
func (c *Control) Kill() { c.killFrom("manual") }

// killFrom is Kill with the op the death interrupted, so the harness can
// tell a commit-path death from a maintenance-path one.
func (c *Control) killFrom(op string) {
	c.mu.Lock()
	if !c.killed && !c.detached {
		c.killed = true
		c.killOp = op
		c.trace.Add("kill")
	}
	c.mu.Unlock()
}

// KillOp returns the device op the kill switch fired on ("" while alive).
func (c *Control) KillOp() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killOp
}

// Manifests returns the running count of successful manifest installs, so
// the harness can tell whether a flush installed durable components inside
// a window it cares about (e.g. mid-batch).
func (c *Control) Manifests() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.manifests
}

// Killed reports whether the simulated process death point was reached.
func (c *Control) Killed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// Detach ends the simulation for this store: no more tracing, faulting, or
// kill enforcement; everything passes through. The harness detaches after
// snapshotting the crash image so the abandoned store's Close can release
// file handles without polluting the record.
func (c *Control) Detach() {
	c.mu.Lock()
	c.detached = true
	c.mu.Unlock()
}

// Ops returns the traced-operation count so far.
func (c *Control) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Fired returns a copy of the decisions that fired, in firing order.
func (c *Control) Fired() []FiredFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FiredFault(nil), c.fired...)
}

// WALState returns the written length and fsync-covered prefix of the
// shard's WAL, in bytes.
func (c *Control) WALState(shard int) (length, durable int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.wal[shard]
	if w == nil {
		return 0, 0
	}
	return w.length, w.durable
}

// begin gates one traced operation: enforces the kill switch, assigns the
// op its trace entry, and asks the injector for a fault. applicable, when
// non-nil, filters fault kinds that cannot apply to this particular call.
func (c *Control) begin(shard int, op, detail string, applicable func(kind string) bool) (Fault, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.detached {
		return Fault{}, false, nil
	}
	if c.killed {
		return Fault{}, false, ErrKilled
	}
	c.ops++
	opIdx := c.ops
	if c.killAt > 0 && opIdx >= c.killAt {
		c.killed = true
		c.killOp = op
		c.trace.Addf("%s/%d %s -> kill@%d", op, shard, detail, opIdx)
		return Fault{}, false, ErrKilled
	}
	k := ordKey{shard, op}
	ord := c.ordinals[k]
	c.ordinals[k] = ord + 1
	var f Fault
	ok := false
	if !c.quiet {
		f, ok = c.inj.Decide(shard, op, ord)
	}
	if ok && f.Kind == KindDelaySync && c.sleeper == nil {
		ok = false
	}
	if ok && applicable != nil && !applicable(f.Kind) {
		ok = false
	}
	tag := ""
	if ok {
		idx := c.nextIdx
		c.nextIdx++
		sup := c.suppress[idx]
		c.fired = append(c.fired, FiredFault{
			Index: idx, OpIndex: opIdx, Shard: shard, Op: op, Ord: ord,
			Fault: f, Suppressed: sup,
		})
		if sup {
			tag = fmt.Sprintf(" [T%d:%s suppressed]", idx, f.Kind)
			ok = false
		} else {
			tag = fmt.Sprintf(" [T%d:%s]", idx, f.Kind)
		}
	}
	c.trace.Addf("%s/%d %s%s", op, shard, detail, tag)
	return f, ok, nil
}

// note records a trace-only event (no kill gate, no faults).
func (c *Control) note(shard int, op, detail string) {
	c.mu.Lock()
	if !c.detached && !c.killed {
		c.trace.Addf("%s/%d %s", op, shard, detail)
	}
	c.mu.Unlock()
}

func (c *Control) walFor(shard int) *walState {
	w := c.wal[shard]
	if w == nil {
		w = &walState{}
		c.wal[shard] = w
	}
	return w
}

func (c *Control) walLen(shard int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.walFor(shard).length
}

func (c *Control) noteAppendWAL(shard int, n int, sync bool) {
	c.mu.Lock()
	w := c.walFor(shard)
	w.length += int64(n)
	if sync {
		w.durable = w.length
	}
	c.mu.Unlock()
}

// noteWALSynced marks the prefix up to upTo durable (a covering fsync
// completed; upTo is the length snapshot taken before issuing it).
func (c *Control) noteWALSynced(shard int, upTo int64) {
	c.mu.Lock()
	w := c.walFor(shard)
	if upTo > w.durable {
		w.durable = upTo
	}
	c.mu.Unlock()
}

func (c *Control) noteResetWAL(shard int, n int64) {
	c.mu.Lock()
	w := c.walFor(shard)
	w.length, w.durable = n, n
	c.mu.Unlock()
}

// Device is the fault-injecting storage.Device wrapper. Mutating and
// durability operations are traced, counted against the kill switch, and
// subject to injection; reads pass through untouched. Wrap returns the
// richer fileDevice when the inner device implements the durability
// interfaces, so interface assertions against the wrapped device stay
// truthful.
type Device struct {
	c     *Control
	shard int
	inner storage.Device
}

var _ storage.Device = (*Device)(nil)

// Wrap wraps one shard's device. Use it as lsmstore.Options.WrapDevice.
func (c *Control) Wrap(shard int, dev storage.Device) storage.Device {
	c.mu.Lock()
	c.walFor(shard)
	c.mu.Unlock()
	d := Device{c: c, shard: shard, inner: dev}
	m, mok := dev.(storage.ManifestDevice)
	w, wok := dev.(storage.WALSyncDevice)
	if mok && wok {
		return &fileDevice{Device: d, m: m, w: w}
	}
	return &d
}

func (d *Device) Profile() storage.Profile { return d.inner.Profile() }
func (d *Device) PageSize() int            { return d.inner.PageSize() }
func (d *Device) BytesWritten() int64      { return d.inner.BytesWritten() }
func (d *Device) List() []storage.FileID   { return d.inner.List() }

func (d *Device) Create() storage.FileID {
	id := d.inner.Create()
	d.c.note(d.shard, OpCreate, fmt.Sprintf("id=%d", id))
	return id
}

func (d *Device) Delete(id storage.FileID) {
	if _, _, err := d.c.begin(d.shard, OpDelete, fmt.Sprintf("id=%d", id), nil); err != nil {
		return // a dead process deletes nothing
	}
	d.inner.Delete(id)
}

func (d *Device) AppendPageEnv(env *metrics.Env, id storage.FileID, data []byte) (int, error) {
	f, ok, err := d.c.begin(d.shard, OpAppendPage, fmt.Sprintf("id=%d n=%d", id, len(data)), nil)
	if err != nil {
		return 0, err
	}
	if ok && f.Kind == KindPageAppend {
		return 0, &injectedError{KindPageAppend}
	}
	return d.inner.AppendPageEnv(env, id, data)
}

func (d *Device) ReadPageEnv(env *metrics.Env, id storage.FileID, page int, seqHint bool) ([]byte, error) {
	return d.inner.ReadPageEnv(env, id, page, seqHint)
}

func (d *Device) PrefetchPageEnv(env *metrics.Env, id storage.FileID, page int) ([]byte, error) {
	return d.inner.PrefetchPageEnv(env, id, page)
}

func (d *Device) NumPages(id storage.FileID) (int, error) { return d.inner.NumPages(id) }

func (d *Device) Sync() error {
	if _, _, err := d.c.begin(d.shard, OpSync, "", nil); err != nil {
		return err
	}
	upTo := d.c.walLen(d.shard)
	if err := d.inner.Sync(); err != nil {
		return err
	}
	// filedev's Sync covers the WAL file too.
	d.c.noteWALSynced(d.shard, upTo)
	return nil
}

func (d *Device) Close() error {
	d.c.mu.Lock()
	dead := d.c.killed && !d.c.detached
	d.c.mu.Unlock()
	if dead {
		// A dead process cannot run its shutdown path (which would flush
		// buffered pages). The harness detaches after snapshotting the
		// crash image, and only then closes to release file handles.
		return ErrKilled
	}
	return d.inner.Close()
}

// fileDevice extends Device with the durability interfaces, forwarding to
// the asserted inner views so the engine's own interface assertions see
// exactly what the unwrapped device would offer.
type fileDevice struct {
	Device
	m storage.ManifestDevice
	w storage.WALSyncDevice
}

var (
	_ storage.ManifestDevice = (*fileDevice)(nil)
	_ storage.WALSyncDevice  = (*fileDevice)(nil)
)

func (d *fileDevice) AppendWAL(data []byte, sync bool) error {
	applicable := func(kind string) bool {
		// A commit-fsync fault models the fsync step of a sync append;
		// unsynced appends have no such step.
		return kind != KindCommitFsync || sync
	}
	f, ok, err := d.c.begin(d.shard, OpAppendWAL, fmt.Sprintf("n=%d sync=%t", len(data), sync), applicable)
	if err != nil {
		return err
	}
	if ok {
		switch f.Kind {
		case KindCommitFsync:
			// Nothing reaches the device: the record certainly does not
			// survive, matching filedev's truncate-on-failed-append
			// rollback contract.
			return &injectedError{KindCommitFsync}
		case KindTornAppend:
			// A prefix lands unsynced, then the process dies mid-append.
			n := 0
			if len(data) > 0 {
				n = 1 + int(f.Frac*float64(len(data)-1))
				if n > len(data) {
					n = len(data)
				}
			}
			if n > 0 {
				if aerr := d.w.AppendWAL(data[:n], false); aerr == nil {
					d.c.noteAppendWAL(d.shard, n, false)
				}
			}
			d.c.killFrom(OpAppendWAL)
			return ErrKilled
		}
	}
	if err := d.w.AppendWAL(data, sync); err != nil {
		return err
	}
	d.c.noteAppendWAL(d.shard, len(data), sync)
	return nil
}

func (d *fileDevice) SyncWAL() error {
	f, ok, err := d.c.begin(d.shard, OpSyncWAL, "", nil)
	if err != nil {
		return err
	}
	upTo := d.c.walLen(d.shard)
	if ok {
		switch f.Kind {
		case KindSyncWAL:
			if f.Report {
				// Fail-report flavor: the fsync completes — the bytes ARE
				// durable — but failure is reported. The engine must treat
				// the covered suffix as indeterminate anyway.
				if serr := d.w.SyncWAL(); serr == nil {
					d.c.noteWALSynced(d.shard, upTo)
				}
			}
			// Fail-before flavor: the fsync never happens; the bytes stay
			// volatile until some later covering sync.
			return &injectedError{KindSyncWAL}
		case KindDelaySync:
			// Stretch the moment before the covering fsync on virtual
			// time, firing any armed hold-open window timers first.
			d.c.sleeper.Advance(time.Duration(1 + int64(f.Frac*float64(5*time.Millisecond))))
		}
	}
	if err := d.w.SyncWAL(); err != nil {
		return err
	}
	d.c.noteWALSynced(d.shard, upTo)
	return nil
}

func (d *fileDevice) LoadWAL() ([]byte, error) {
	img, err := d.w.LoadWAL()
	if err != nil {
		return nil, err
	}
	d.c.mu.Lock()
	w := d.c.walFor(d.shard)
	w.length, w.durable = int64(len(img)), int64(len(img))
	c := d.c
	c.mu.Unlock()
	c.note(d.shard, "load-wal", fmt.Sprintf("n=%d", len(img)))
	return img, nil
}

func (d *fileDevice) ResetWAL(data []byte) error {
	if _, _, err := d.c.begin(d.shard, OpResetWAL, fmt.Sprintf("n=%d", len(data)), nil); err != nil {
		return err
	}
	if err := d.w.ResetWAL(data); err != nil {
		return err
	}
	d.c.noteResetWAL(d.shard, int64(len(data)))
	return nil
}

func (d *fileDevice) SaveManifest(data []byte) error {
	f, ok, err := d.c.begin(d.shard, OpSaveManifest, fmt.Sprintf("n=%d", len(data)), nil)
	if err != nil {
		return err
	}
	if ok && f.Kind == KindManifest {
		// Fail before the install barrier: no device sync, no manifest
		// replace; the previous manifest stays authoritative.
		return &injectedError{KindManifest}
	}
	upTo := d.c.walLen(d.shard)
	if err := d.m.SaveManifest(data); err != nil {
		return err
	}
	// SaveManifest syncs the whole device (WAL included) before the
	// atomic replace, so every appended byte is durable once it returns.
	d.c.noteWALSynced(d.shard, upTo)
	d.c.mu.Lock()
	d.c.manifests++
	d.c.mu.Unlock()
	return nil
}

func (d *fileDevice) LoadManifest() ([]byte, error) { return d.m.LoadManifest() }
