package dst

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Sched is the yield-point hook installed as lsmstore.Options.Yield. The
// engine calls it at its instrumented scheduling points (the WAL
// group-commit path, the maintenance pool); the scheduler either records
// them (sequential profile: the yield stream is part of the determinism
// contract) or perturbs the interleaving around them (concurrent profile:
// seeded Gosched bursts and virtual-time jumps shake out orderings the
// runtime would rarely pick on its own).
type Sched struct {
	seed    uint64
	perturb bool
	trace   *Trace // non-nil only in the sequential profile
	sleeper *SimSleeper
	seq     atomic.Uint64
}

// NewSched builds a scheduler. trace non-nil records every yield point
// (only sound when the engine runs single-threaded); perturb enables
// seeded interleaving perturbation.
func NewSched(seed uint64, perturb bool, trace *Trace, sleeper *SimSleeper) *Sched {
	return &Sched{seed: seed, perturb: perturb, trace: trace, sleeper: sleeper}
}

// Yield is the engine-facing hook.
func (s *Sched) Yield(point string) {
	n := s.seq.Add(1)
	if s.trace != nil {
		s.trace.Add("yield " + point)
	}
	if !s.perturb {
		return
	}
	r := mix64(s.seed ^ n*0x9e3779b97f4a7c15)
	switch r % 4 {
	case 0:
		// Hand the processor away once or a few times: lets a racing
		// flush, merge, or commit leader slot in right here.
		for i := uint64(0); i <= (r>>8)%3; i++ {
			runtime.Gosched()
		}
	case 1:
		// Jump virtual time: fires any armed group-commit window timer at
		// this instant instead of "later".
		if s.sleeper != nil {
			s.sleeper.Advance(time.Duration((r>>16)%2000) * time.Microsecond)
		}
	}
	// Remaining cases: proceed untouched, so most yields stay cheap.
}
