package readcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMissNegative(t *testing.T) {
	c := New(Options{Bytes: 1 << 20, Segments: 4})
	k := []byte("pk-1")

	if _, out, tok := c.Get(k); out != Miss {
		t.Fatalf("fresh Get = %v, want Miss", out)
	} else {
		c.Put(k, []byte("rec"), tok)
	}
	v, out, _ := c.Get(k)
	if out != Hit || string(v) != "rec" {
		t.Fatalf("Get after Put = %v %q, want Hit \"rec\"", out, v)
	}

	absent := []byte("pk-absent")
	_, out, tok := c.Get(absent)
	if out != Miss {
		t.Fatalf("absent Get = %v, want Miss", out)
	}
	c.PutNegative(absent, tok)
	if _, out, _ := c.Get(absent); out != NegativeHit {
		t.Fatalf("Get after PutNegative = %v, want NegativeHit", out)
	}

	cs := c.Counters()
	if cs.ReadCacheHits != 1 || cs.ReadCacheMisses != 2 || cs.ReadCacheNegHits != 1 {
		t.Fatalf("counters = %+v", cs)
	}
}

func TestInvalidateRemovesBothKinds(t *testing.T) {
	c := New(Options{Bytes: 1 << 20, Segments: 1})
	pos, neg := []byte("pos"), []byte("neg")
	_, _, tok := c.Get(pos)
	c.Put(pos, []byte("v"), tok)
	_, _, tok = c.Get(neg)
	c.PutNegative(neg, tok)

	c.Invalidate(pos)
	c.Invalidate(neg)
	if _, out, _ := c.Get(pos); out != Miss {
		t.Fatalf("positive entry survived Invalidate: %v", out)
	}
	if _, out, _ := c.Get(neg); out != Miss {
		t.Fatalf("negative entry survived Invalidate: %v", out)
	}
	if got := c.Counters().ReadCacheInvalidations; got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
}

// TestStaleFillDropped is the lookaside race, pinned: a reader's token
// predating an invalidation must not install its (stale) value.
func TestStaleFillDropped(t *testing.T) {
	c := New(Options{Bytes: 1 << 20, Segments: 1})
	k := []byte("k")
	_, _, tok := c.Get(k) // reader misses, goes to the engine...
	c.Invalidate(k)       // ...writer mutates k and invalidates...
	c.Put(k, []byte("stale"), tok)
	if _, out, _ := c.Get(k); out != Miss {
		t.Fatalf("stale fill was installed (out=%v)", out)
	}

	// Same-segment invalidations of a *different* key also gate the fill:
	// the version is per segment, which over-drops but never under-drops.
	_, _, tok = c.Get(k)
	c.Invalidate([]byte("other"))
	c.Put(k, []byte("also-dropped"), tok)
	if _, out, _ := c.Get(k); out != Miss {
		t.Fatalf("fill survived a same-segment invalidation (out=%v)", out)
	}

	// A clean miss-fill cycle still works.
	_, _, tok = c.Get(k)
	c.Put(k, []byte("fresh"), tok)
	if v, out, _ := c.Get(k); out != Hit || string(v) != "fresh" {
		t.Fatalf("clean fill failed: %v %q", out, v)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(Options{Bytes: 1 << 20, Segments: 8})
	var toks []Token
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		_, _, tok := c.Get(k)
		c.Put(k, []byte("v"), tok)
		_, _, tok2 := c.Get([]byte(fmt.Sprintf("m%02d", i)))
		toks = append(toks, tok2)
	}
	if c.Len() != 64 {
		t.Fatalf("Len = %d, want 64", c.Len())
	}
	c.InvalidateAll()
	if c.Len() != 0 || c.SizeBytes() != 0 {
		t.Fatalf("after InvalidateAll: len=%d bytes=%d", c.Len(), c.SizeBytes())
	}
	// Every pre-flush token is dead.
	for i, tok := range toks {
		c.Put([]byte(fmt.Sprintf("m%02d", i)), []byte("stale"), tok)
	}
	if c.Len() != 0 {
		t.Fatalf("stale fills landed after InvalidateAll: len=%d", c.Len())
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	// One segment, room for roughly 4 entries of cost 64+8.
	c := New(Options{Bytes: 4 * (entryOverhead + 8), Segments: 1})
	put := func(i int) {
		k := []byte(fmt.Sprintf("key-%03d", i)) // 7 bytes
		_, _, tok := c.Get(k)
		c.Put(k, []byte("v"), tok) // cost 7+1+64 = 72
	}
	for i := 0; i < 8; i++ {
		put(i)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4 after eviction", c.Len())
	}
	// Oldest entries are gone, newest remain.
	if _, out, _ := c.Get([]byte("key-000")); out != Miss {
		t.Fatal("oldest entry not evicted")
	}
	if _, out, _ := c.Get([]byte("key-007")); out != Hit {
		t.Fatal("newest entry evicted")
	}
	// Touching an entry protects it: access key-004, add two more, 004 stays.
	if _, out, _ := c.Get([]byte("key-004")); out != Hit {
		t.Fatal("key-004 should be resident")
	}
	put(8)
	put(9)
	if _, out, _ := c.Get([]byte("key-004")); out != Hit {
		t.Fatal("recently used entry was evicted before older ones")
	}
	if got, want := c.SizeBytes(), int64(4*(entryOverhead+8)); got > want {
		t.Fatalf("bytes %d over budget %d", got, want)
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(Options{Bytes: 256, Segments: 1})
	k := []byte("k")
	_, _, tok := c.Get(k)
	c.Put(k, make([]byte, 1024), tok)
	if c.Len() != 0 {
		t.Fatal("entry larger than the segment share was cached")
	}
}

func TestDefaultsAndPowerOfTwo(t *testing.T) {
	c := New(Options{})
	if len(c.segs) != defaultSegments {
		t.Fatalf("default segments = %d, want %d", len(c.segs), defaultSegments)
	}
	c = New(Options{Segments: 5})
	if len(c.segs) != 8 {
		t.Fatalf("segments rounded to %d, want 8", len(c.segs))
	}
}

// TestConcurrentFillInvalidate hammers one cache from filling readers and
// invalidating writers; run under -race this is the segment-lock soundness
// check (the read-your-writes end-to-end battery lives in lsmstore).
func TestConcurrentFillInvalidate(t *testing.T) {
	c := New(Options{Bytes: 1 << 20, Segments: 4})
	const keys = 16
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Invalidate([]byte(fmt.Sprintf("k%02d", (i+w)%keys)))
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 20000; i++ {
				k := []byte(fmt.Sprintf("k%02d", i%keys))
				v, out, tok := c.Get(k)
				switch out {
				case Miss:
					c.Put(k, []byte("v"), tok)
				case Hit:
					if string(v) != "v" {
						t.Errorf("hit returned %q", v)
						return
					}
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New(Options{Bytes: 32 << 20, Segments: 16})
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
		_, _, tok := c.Get(keys[i])
		c.Put(keys[i], make([]byte, 128), tok)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i%len(keys)])
			i++
		}
	})
}
