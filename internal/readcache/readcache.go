package readcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Options sizes a Cache. The zero value of either field picks a default.
type Options struct {
	// Bytes bounds the total memory charged to cached entries (keys,
	// values, and a fixed per-entry overhead). Default 32 MiB.
	Bytes int64
	// Segments is the number of independently locked segments; rounded up
	// to a power of two. Default 16.
	Segments int
}

const (
	defaultBytes    = 32 << 20
	defaultSegments = 16
	// entryOverhead approximates the bookkeeping bytes per entry (map
	// cell, list links, headers) charged against the byte budget.
	entryOverhead = 64
)

// Outcome classifies a Get.
type Outcome int

const (
	// Miss: the key has no entry; the caller should consult the engine
	// and offer the result back via Put/PutNegative with the token.
	Miss Outcome = iota
	// Hit: the key's encoded record was returned.
	Hit
	// NegativeHit: the key is cached as known-absent.
	NegativeHit
)

// Token carries the segment version observed by a Get miss; the matching
// Put/PutNegative installs its entry only if the version is unchanged (see
// doc.go, invariant 2).
type Token uint64

// entry is one cached key, threaded on its segment's intrusive LRU ring.
type entry struct {
	key        string
	val        []byte // nil for negative entries
	neg        bool
	cost       int64
	prev, next *entry
}

// segment is one lock domain: a map, an LRU ring (root.next is
// most-recent), a byte budget share, and the fill-gate version.
type segment struct {
	mu      sync.Mutex
	entries map[string]*entry
	root    entry // sentinel of the LRU ring
	bytes   int64
	cap     int64
	version uint64
}

// Cache is the sharded read cache. See the package documentation for the
// invalidation contract. All methods are safe for concurrent use.
type Cache struct {
	segs []*segment
	mask uint64

	hits          atomic.Int64
	misses        atomic.Int64
	negHits       atomic.Int64
	invalidations atomic.Int64
}

// New builds a cache with the given bounds.
func New(o Options) *Cache {
	bytes := o.Bytes
	if bytes <= 0 {
		bytes = defaultBytes
	}
	n := o.Segments
	if n <= 0 {
		n = defaultSegments
	}
	// Round up to a power of two so segment selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	c := &Cache{segs: make([]*segment, pow), mask: uint64(pow - 1)}
	per := bytes / int64(pow)
	if per < 1 {
		per = 1
	}
	for i := range c.segs {
		s := &segment{entries: make(map[string]*entry), cap: per}
		s.root.prev, s.root.next = &s.root, &s.root
		c.segs[i] = s
	}
	return c
}

// segOf hashes pk onto a segment. FNV-1a with a murmur-style finisher: the
// shard router routes with plain FNV-1a, so the extra mix keeps segment
// choice decorrelated from shard choice.
func (c *Cache) segOf(pk []byte) *segment {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range pk {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return c.segs[h&c.mask]
}

// Get looks pk up. On Hit the returned slice is the cached record — shared,
// not a copy; the caller must not modify it. On Miss the token gates a
// subsequent Put/PutNegative for the same key.
func (c *Cache) Get(pk []byte) ([]byte, Outcome, Token) {
	s := c.segOf(pk)
	s.mu.Lock()
	e, ok := s.entries[string(pk)] // no alloc: map lookup special case
	if !ok {
		tok := Token(s.version)
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, Miss, tok
	}
	s.moveFront(e)
	val, neg := e.val, e.neg
	s.mu.Unlock()
	if neg {
		c.negHits.Add(1)
		return nil, NegativeHit, 0
	}
	c.hits.Add(1)
	return val, Hit, 0
}

// Put offers a positive entry observed by an engine read that missed under
// tok. The value is retained as-is (no copy) and must be immutable. The
// fill is dropped if any invalidation touched the segment since the miss,
// or if the entry alone exceeds the segment's byte share.
func (c *Cache) Put(pk, val []byte, tok Token) {
	c.fill(pk, val, false, tok)
}

// PutNegative offers a known-absent entry under the same contract as Put.
func (c *Cache) PutNegative(pk []byte, tok Token) {
	c.fill(pk, nil, true, tok)
}

func (c *Cache) fill(pk, val []byte, neg bool, tok Token) {
	s := c.segOf(pk)
	cost := int64(len(pk)+len(val)) + entryOverhead
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.version != uint64(tok) || cost > s.cap {
		return
	}
	if old, ok := s.entries[string(pk)]; ok {
		// A racing reader filled the same key first; refresh in place.
		s.bytes += cost - old.cost
		old.val, old.neg, old.cost = val, neg, cost
		s.moveFront(old)
	} else {
		e := &entry{key: string(pk), val: val, neg: neg, cost: cost}
		s.entries[e.key] = e
		s.pushFront(e)
		s.bytes += cost
	}
	for s.bytes > s.cap {
		s.evictOldest()
	}
}

// Invalidate removes pk's entry (positive or negative) and bumps the
// segment version so in-flight fills for any key in the segment are
// discarded. Writers call this after applying a mutation and before
// acknowledging it.
func (c *Cache) Invalidate(pk []byte) {
	s := c.segOf(pk)
	s.mu.Lock()
	s.version++
	if e, ok := s.entries[string(pk)]; ok {
		s.remove(e)
	}
	s.mu.Unlock()
	c.invalidations.Add(1)
}

// InvalidateAll empties the cache and bumps every segment version —
// crash/recover transitions, where whole memtables of writes disappear.
func (c *Cache) InvalidateAll() {
	for _, s := range c.segs {
		s.mu.Lock()
		s.version++
		s.entries = make(map[string]*entry)
		s.root.prev, s.root.next = &s.root, &s.root
		s.bytes = 0
		s.mu.Unlock()
	}
}

// Counters reports the cache's activity as a metrics snapshot holding only
// the ReadCache* fields; lsmstore folds it into the aggregate Stats.
func (c *Cache) Counters() metrics.Snapshot {
	return metrics.Snapshot{
		ReadCacheHits:          c.hits.Load(),
		ReadCacheMisses:        c.misses.Load(),
		ReadCacheNegHits:       c.negHits.Load(),
		ReadCacheInvalidations: c.invalidations.Load(),
	}
}

// Len returns the number of cached entries (tests and introspection).
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.segs {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// SizeBytes returns the bytes currently charged (tests and introspection).
func (c *Cache) SizeBytes() int64 {
	var n int64
	for _, s := range c.segs {
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// --- intrusive LRU ring (segment lock held) ---

func (s *segment) pushFront(e *entry) {
	e.prev = &s.root
	e.next = s.root.next
	e.prev.next = e
	e.next.prev = e
}

func (s *segment) moveFront(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	s.pushFront(e)
}

func (s *segment) remove(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	s.bytes -= e.cost
	delete(s.entries, e.key)
}

func (s *segment) evictOldest() {
	if s.root.prev == &s.root {
		return
	}
	s.remove(s.root.prev)
}
