// Package readcache is the sharded hot-entry cache that sits in front of
// the LSM engine on the point-read path (lsmstore.Options.ReadCache). It
// maps primary keys to encoded records (positive entries) and remembers
// keys the engine is known not to hold (negative entries), bounded by a
// byte budget and evicted LRU-first per segment.
//
// # Structure
//
// The cache is split into N independently locked segments (power of two;
// a key's segment is chosen by hash). Each segment holds its own map,
// intrusive LRU list, byte budget share, and a version counter. There is
// no global lock: a GET and an unrelated invalidation never contend.
//
// # Invariants — who invalidates, and when
//
// The cache itself never reads the engine; it only remembers what callers
// tell it. Correctness is the writers' obligation and rests on three rules:
//
//  1. Writers invalidate, they never fill. Every mutation path —
//     lsmstore.DB.Insert/Upsert/Delete, the unsharded ApplyBatch helpers,
//     and the shard.Router fan-out workers (Router.SetInvalidator) —
//     calls Invalidate(pk) for each mutated key after the engine applied
//     the mutation and before the write is acknowledged to the caller.
//     A reader that observes the ack therefore can never hit a cache
//     entry predating the write. Uncertain outcomes (a failed covering
//     group-commit fsync zeroes the applied results) still invalidate:
//     an empty cache entry is always safe, a stale one never is.
//
//  2. Fills are version-gated, so a racing reader cannot resurrect a
//     stale value. Get on a miss returns a token carrying the segment's
//     version; the later Put/PutNegative with that token installs the
//     entry only if no Invalidate touched the segment in between
//     (Invalidate and InvalidateAll bump the version). Without the gate,
//     a reader could fetch an old value from the engine, lose the CPU,
//     and insert it after a writer's invalidation — the classic
//     lookaside-cache race. With it, the worst case is a discarded fill.
//
//  3. Crash and recovery flush everything. lsmstore.DB.Crash discards
//     unflushed memtables, so positive entries could otherwise serve
//     writes the crash destroyed; DB.Crash and DB.Recover call
//     InvalidateAll after the engine transition. A real process restart
//     trivially starts cold — the cache is memory-only and never
//     persisted.
//
// Value slices handed to Put are stored as-is, and Get returns them
// without copying; both sides of the contract must treat them as
// immutable. The engine's component pages and memtable entries already
// are (components are write-once, memtable values are replaced, never
// edited in place), which is what makes the zero-copy GET path safe.
//
// The cache is deterministic — no wall-clock reads, no randomness — so
// the internal/dst simulation can enable it without breaking
// bit-reproducibility.
package readcache
