package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/workload"
)

func init() {
	register("fig13", fig13)
	register("fig14", fig14)
	register("fig15a", fig15a)
	register("fig15b", fig15b)
}

// fig13 — insert ingestion performance: with/without the primary key index,
// duplicate ratios 0% and 50%, on HDD and SSD profiles. The paper plots
// cumulative records over time; we report cumulative simulated minutes at
// each quarter of the stream (lower is better).
func fig13(s Scale) (*Result, error) {
	res := &Result{Figure: "fig13", Title: "Insert ingestion: pk-index vs no-pk-index, duplicates, HDD/SSD"}
	for _, dev := range []struct {
		name    string
		profile storage.Profile
	}{
		{"hdd", storage.ScaledHDD(s.PageSize)},
		{"ssd", scaledSSD(s.PageSize)},
	} {
		for _, usePK := range []bool{true, false} {
			for _, dup := range []float64{0, 0.5} {
				c := s.newConfig()
				c.device = dev.profile
				c.usePKIndex = usePK
				ds, env, _, err := build(s, c)
				if err != nil {
					return nil, err
				}
				wcfg := workload.DefaultConfig(11)
				wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
				wcfg.UserIDRange = s.UserRange
				wcfg.DuplicateRatio = dup
				gen := workload.NewGenerator(wcfg)
				marks, err := insertAll(ds, env, gen, s.IngestOps)
				if err != nil {
					return nil, err
				}
				series := fmt.Sprintf("%s pk-idx=%v dup=%.0f%%", dev.name, usePK, dup*100)
				for q, m := range marks {
					res.Add(series, fmt.Sprintf("%d%%", (q+1)*25), m.Minutes(), "min")
				}
			}
		}
	}
	return res, nil
}

func scaledSSD(pageSize int) storage.Profile {
	p := storage.SSD()
	p.PageSize = pageSize
	p.ReadAheadPages = 8
	return p
}

// strategyConfigs enumerates Figure 14's four strategies.
func strategyConfigs(s Scale) []struct {
	name   string
	mutate func(*dsConfig)
} {
	return []struct {
		name   string
		mutate func(*dsConfig)
	}{
		{"eager", func(c *dsConfig) { c.strategy = core.Eager }},
		{"validation (no repair)", func(c *dsConfig) { c.strategy = core.Validation }},
		{"validation", func(c *dsConfig) {
			c.strategy = core.Validation
			c.mergeRepair = true
		}},
		{"mutable-bitmap", func(c *dsConfig) {
			c.strategy = core.MutableBitmap
			c.cc = core.SideFile
		}},
	}
}

// fig14 — upsert ingestion performance across maintenance strategies under
// no updates, 50% uniform updates, and 50% Zipf updates.
func fig14(s Scale) (*Result, error) {
	res := &Result{Figure: "fig14", Title: "Upsert ingestion by strategy and update distribution"}
	for _, upd := range []struct {
		name  string
		ratio float64
		zipf  bool
	}{
		{"0%", 0, false},
		{"50% uniform", 0.5, false},
		{"50% zipf", 0.5, true},
	} {
		for _, sc := range strategyConfigs(s) {
			c := s.newConfig()
			sc.mutate(&c)
			ds, env, _, err := build(s, c)
			if err != nil {
				return nil, err
			}
			wcfg := workload.DefaultConfig(13)
			wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
			wcfg.UserIDRange = s.UserRange
			wcfg.UpdateRatio = upd.ratio
			wcfg.ZipfUpdates = upd.zipf
			gen := workload.NewGenerator(wcfg)
			marks, err := ingest(ds, env, gen, s.IngestOps)
			if err != nil {
				return nil, err
			}
			res.Add(sc.name+" / "+upd.name, "total", marks[3].Minutes(), "min")
			res.Add(sc.name+" / "+upd.name, "kops", throughput(s.IngestOps, marks[3]), "")
		}
	}
	return res, nil
}

// fig15a — impact of merge frequency: sweep the maximum mergeable component
// size (more merges <-> smaller cap) on upsert ingestion, 10% updates.
func fig15a(s Scale) (*Result, error) {
	res := &Result{Figure: "fig15a", Title: "Impact of MaxMergeableComponentSize on upsert ingestion"}
	caps := []int64{s.MaxMergeable / 4, s.MaxMergeable, s.MaxMergeable * 4, s.MaxMergeable * 16}
	names := []string{"1x/4", "1x", "4x", "16x"}
	for _, sc := range strategyConfigs(s) {
		for i, cp := range caps {
			c := s.newConfig()
			sc.mutate(&c)
			c.maxMergeable = cp
			ds, env, _, err := build(s, c)
			if err != nil {
				return nil, err
			}
			wcfg := workload.DefaultConfig(15)
			wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
			wcfg.UserIDRange = s.UserRange
			wcfg.UpdateRatio = 0.10
			gen := workload.NewGenerator(wcfg)
			marks, err := ingest(ds, env, gen, s.IngestOps)
			if err != nil {
				return nil, err
			}
			res.Add(sc.name, names[i], throughput(s.IngestOps, marks[3]), "kops")
		}
	}
	return res, nil
}

// fig15b — scalability with 1..5 secondary indexes, including the
// deleted-key B+-tree baseline; 10% updates. The Mutable-bitmap strategy is
// excluded as in the paper (it is unaffected by secondary index count).
func fig15b(s Scale) (*Result, error) {
	res := &Result{Figure: "fig15b", Title: "Upsert ingestion vs number of secondary indexes"}
	variants := append(strategyConfigs(s)[:3:3], struct {
		name   string
		mutate func(*dsConfig)
	}{"deleted-key B+tree", func(c *dsConfig) { c.strategy = core.DeletedKey }})
	for _, sc := range variants {
		for n := 1; n <= 5; n++ {
			c := s.newConfig()
			sc.mutate(&c)
			c.numSecondary = n
			ds, env, _, err := build(s, c)
			if err != nil {
				return nil, err
			}
			wcfg := workload.DefaultConfig(17)
			wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
			wcfg.UserIDRange = s.UserRange
			wcfg.UpdateRatio = 0.10
			gen := workload.NewGenerator(wcfg)
			marks, err := ingest(ds, env, gen, s.IngestOps)
			if err != nil {
				return nil, err
			}
			res.Add(sc.name, fmt.Sprint(n), throughput(s.IngestOps, marks[3]), "kops")
		}
	}
	return res, nil
}
