package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/workload"
)

func init() {
	register("fig16", fig16)
	register("fig17", fig17)
	register("fig18", fig18)
	register("fig19", fig19)
}

// updDataset prepares a Figure 16/17/19 dataset by upserting QueryRecords
// operations at the given actual update ratio.
func updDataset(s Scale, mutate func(*dsConfig), updateRatio float64, seed int64) (*core.Dataset, *metrics.Env, error) {
	c := s.newConfig()
	if mutate != nil {
		mutate(&c)
	}
	ds, env, _, err := build(s, c)
	if err != nil {
		return nil, nil, err
	}
	wcfg := workload.DefaultConfig(seed)
	wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
	wcfg.UserIDRange = s.UserRange
	wcfg.UpdateRatio = updateRatio
	gen := workload.NewGenerator(wcfg)
	if _, err := ingest(ds, env, gen, s.QueryRecords); err != nil {
		return nil, nil, err
	}
	return ds, env, nil
}

// fig16 — non-index-only secondary query performance: Eager vs the two
// validation methods, with and without merge repair, at 0% and 50% updates.
func fig16(s Scale) (*Result, error) {
	res := &Result{Figure: "fig16", Title: "Non-index-only query performance"}
	sels := []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.10}
	variants := []struct {
		series  string
		mutate  func(*dsConfig)
		methods map[string]query.ValidationMethod
	}{
		{"eager", func(c *dsConfig) { c.strategy = core.Eager },
			map[string]query.ValidationMethod{"eager": query.NoValidation}},
		{"norepair", func(c *dsConfig) { c.strategy = core.Validation },
			map[string]query.ValidationMethod{"direct (no repair)": query.Direct, "ts (no repair)": query.Timestamp}},
		{"repair", func(c *dsConfig) { c.strategy = core.Validation; c.mergeRepair = true },
			map[string]query.ValidationMethod{"direct": query.Direct, "ts": query.Timestamp}},
	}
	for _, upd := range []float64{0, 0.5} {
		suffix := fmt.Sprintf(" u=%.0f%%", upd*100)
		for _, v := range variants {
			ds, env, err := updDataset(s, v.mutate, upd, 21)
			if err != nil {
				return nil, err
			}
			si := ds.Secondary("user0")
			for name, method := range v.methods {
				for _, sel := range sels {
					d, err := avgQuery(ds, env, si, s, sel, query.SecondaryQueryOptions{
						Validation: method,
						Lookup:     query.DefaultLookupConfig(),
					})
					if err != nil {
						return nil, err
					}
					res.Add(name+suffix, fmt.Sprintf("%.4g%%", sel*100), d.Seconds(), "s")
				}
			}
		}
	}
	return res, nil
}

// fig17 — index-only query performance: Eager vs Timestamp validation
// (with and without repair). Direct validation is omitted as in the paper
// (it must fetch records anyway).
func fig17(s Scale) (*Result, error) {
	res := &Result{Figure: "fig17", Title: "Index-only query performance"}
	sels := []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.10}
	variants := []struct {
		name   string
		mutate func(*dsConfig)
		method query.ValidationMethod
	}{
		{"eager", func(c *dsConfig) { c.strategy = core.Eager }, query.NoValidation},
		{"ts (no repair)", func(c *dsConfig) { c.strategy = core.Validation }, query.Timestamp},
		{"ts", func(c *dsConfig) { c.strategy = core.Validation; c.mergeRepair = true }, query.Timestamp},
	}
	for _, upd := range []float64{0, 0.5} {
		suffix := fmt.Sprintf(" u=%.0f%%", upd*100)
		for _, v := range variants {
			ds, env, err := updDataset(s, v.mutate, upd, 23)
			if err != nil {
				return nil, err
			}
			si := ds.Secondary("user0")
			for _, sel := range sels {
				d, err := avgQuery(ds, env, si, s, sel, query.SecondaryQueryOptions{
					Validation: v.method,
					IndexOnly:  true,
					Lookup:     query.DefaultLookupConfig(),
				})
				if err != nil {
					return nil, err
				}
				res.Add(v.name+suffix, fmt.Sprintf("%.4g%%", sel*100), d.Seconds(), "s")
			}
		}
	}
	return res, nil
}

// fig18 — Timestamp validation under a small buffer cache: the primary key
// index is small enough that even an 8x smaller cache barely hurts.
func fig18(s Scale) (*Result, error) {
	res := &Result{Figure: "fig18", Title: "Timestamp validation with small cache"}
	sels := []float64{0.0001, 0.001, 0.01, 0.10}
	for _, cache := range []struct {
		name  string
		bytes int64
	}{
		{"ts validation", s.CacheBytes},
		{"ts validation (small cache)", s.CacheBytes / 8},
	} {
		ds, env, err := updDataset(s, func(c *dsConfig) {
			c.strategy = core.Validation
			c.cacheBytes = cache.bytes
		}, 0, 25)
		if err != nil {
			return nil, err
		}
		si := ds.Secondary("user0")
		for _, sel := range sels {
			d, err := avgQuery(ds, env, si, s, sel, query.SecondaryQueryOptions{
				Validation: query.Timestamp,
				Lookup:     query.DefaultLookupConfig(),
			})
			if err != nil {
				return nil, err
			}
			res.Add(cache.name, fmt.Sprintf("%.4g%%", sel*100), d.Seconds(), "s")
		}
	}
	return res, nil
}

// fig19 — range-filter scan performance, recent vs old predicates, by
// strategy and update ratio. Creation time is a monotone counter spanning
// the whole ingestion (the paper's 2-year span); "N days" maps to the
// matching fraction of that span.
func fig19(s Scale) (*Result, error) {
	res := &Result{Figure: "fig19", Title: "Range filter scan performance (cold cache)"}
	days := []int{1, 7, 30, 180, 365}
	const spanDays = 730
	variants := []struct {
		name   string
		mutate func(*dsConfig)
	}{
		{"eager", func(c *dsConfig) { c.strategy = core.Eager }},
		{"validation", func(c *dsConfig) { c.strategy = core.Validation }},
		{"mutable-bitmap", func(c *dsConfig) { c.strategy = core.MutableBitmap; c.cc = core.SideFile }},
	}
	for _, panel := range []struct {
		name   string
		recent bool
		upd    float64
	}{
		{"recent+50%", true, 0.5},
		{"old+0%", false, 0},
		{"old+50%", false, 0.5},
	} {
		for _, v := range variants {
			ds, env, err := updDataset(s, v.mutate, panel.upd, 27)
			if err != nil {
				return nil, err
			}
			span := ds.CurrentTS()
			for _, d := range days {
				w := span * int64(d) / spanDays
				if w < 1 {
					w = 1
				}
				var lo, hi int64
				if panel.recent {
					lo, hi = span-w, span
				} else {
					lo, hi = 0, w
				}
				// Cold cache per run, as in the paper (5 runs, clean cache).
				dur, err := measureFilterScan(ds, env, lo, hi)
				if err != nil {
					return nil, err
				}
				res.Add(v.name+" / "+panel.name, fmt.Sprintf("%dd", d), dur.Seconds(), "s")
			}
		}
	}
	return res, nil
}

func measureFilterScan(ds *core.Dataset, env *metrics.Env, lo, hi int64) (time.Duration, error) {
	ds.Config().Store.Cache().Reset()
	start := env.Clock.Now()
	count := 0
	err := query.FilterScan(ds, lo, hi, func(e kv.Entry) { count++ })
	if err != nil {
		return 0, err
	}
	return env.Clock.Now() - start, nil
}
