// Ablation experiments beyond the paper's own figures: the DESIGN.md
// design-choice ablations (merge policy, WAL) and the Section 7
// future-work extension (query-driven cracking).
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/lsm"
	"repro/internal/query"
	"repro/internal/workload"
)

func init() {
	register("abA-policy", ablationPolicy)
	register("abB-wal", ablationWAL)
	register("abC-crack", ablationCracking)
}

// ablationPolicy — merge-policy ablation: the paper runs every experiment
// under tiering (ratio 1.2); this compares tiering, leveling, and no-merge
// on upsert ingestion and on cold point-query cost — the write/read
// trade-off the two policies embody (Section 2.1).
func ablationPolicy(s Scale) (*Result, error) {
	res := &Result{Figure: "abA-policy", Title: "Ablation: merge policy (tiering vs leveling vs none)"}
	policies := []struct {
		name string
		set  func(*dsConfig)
	}{
		{"tiering(1.2)", func(c *dsConfig) {}},
		{"leveling(4)", func(c *dsConfig) { c.policy = &lsm.Leveling{SizeRatio: 4} }},
		{"no-merge", func(c *dsConfig) { c.noPolicy = true }},
	}
	for _, p := range policies {
		c := s.newConfig()
		c.strategy = core.Validation
		p.set(&c)
		ds, env, _, err := build(s, c)
		if err != nil {
			return nil, err
		}
		wcfg := workload.DefaultConfig(41)
		wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
		wcfg.UserIDRange = s.UserRange
		wcfg.UpdateRatio = 0.10
		gen := workload.NewGenerator(wcfg)
		marks, err := ingest(ds, env, gen, s.IngestOps)
		if err != nil {
			return nil, err
		}
		res.Add(p.name, "ingest-kops", throughput(s.IngestOps, marks[3]), "")
		res.Add(p.name, "components", float64(ds.Primary().NumDiskComponents()), "")

		// Cold point-query cost: 200 gets of existing keys.
		ds.Config().Store.Cache().Reset()
		start := env.Clock.Now()
		for i := 0; i < 200; i++ {
			pk := gen.PastKey((i * 131) % gen.NumPast())
			if _, _, err := ds.Primary().Get(kv.EncodeUint64(pk)); err != nil {
				return nil, err
			}
		}
		res.Add(p.name, "200-gets", (env.Clock.Now() - start).Seconds(), "s")
	}
	return res, nil
}

// ablationWAL — logging overhead: identical ingestion with and without the
// write-ahead log, isolating the per-operation group-commit cost.
func ablationWAL(s Scale) (*Result, error) {
	res := &Result{Figure: "abB-wal", Title: "Ablation: WAL overhead on ingestion"}
	for _, wal := range []bool{true, false} {
		c := s.newConfig()
		c.strategy = core.Validation
		c.disableWAL = !wal
		ds, env, _, err := build(s, c)
		if err != nil {
			return nil, err
		}
		wcfg := workload.DefaultConfig(43)
		wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
		wcfg.UserIDRange = s.UserRange
		wcfg.UpdateRatio = 0.10
		gen := workload.NewGenerator(wcfg)
		marks, err := ingest(ds, env, gen, s.IngestOps)
		if err != nil {
			return nil, err
		}
		name := "wal"
		if !wal {
			name = "no-wal"
		}
		res.Add(name, "total", marks[3].Minutes(), "min")
		res.Add(name, "kops", throughput(s.IngestOps, marks[3]), "")
	}
	return res, nil
}

// ablationCracking — the query-driven maintenance extension: the same
// Timestamp-validation query runs five times over an update-heavy dataset,
// with and without cracking; cracking pays once and amortizes the
// validation work across subsequent runs.
func ablationCracking(s Scale) (*Result, error) {
	res := &Result{Figure: "abC-crack", Title: "Extension: query-driven cracking amortizes validation"}
	for _, crack := range []bool{false, true} {
		c := s.newConfig()
		c.strategy = core.Validation
		ds, env, _, err := build(s, c)
		if err != nil {
			return nil, err
		}
		wcfg := workload.DefaultConfig(45)
		wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
		wcfg.UserIDRange = s.UserRange
		wcfg.UpdateRatio = 0.5
		gen := workload.NewGenerator(wcfg)
		if _, err := ingest(ds, env, gen, s.QueryRecords); err != nil {
			return nil, err
		}
		si := ds.Secondary("user0")
		name := "no-crack"
		if crack {
			name = "crack"
		}
		// Index-only queries isolate the validation cost that cracking
		// amortizes (record fetches would dominate otherwise).
		lo, hi := selRange(s, 0.05, 1)
		for runIdx := 1; runIdx <= 5; runIdx++ {
			start := env.Clock.Now()
			_, err := query.SecondaryRange(ds, si, workload.UserKey(lo), workload.UserKey(hi),
				query.SecondaryQueryOptions{
					Validation:      query.Timestamp,
					IndexOnly:       true,
					Lookup:          query.DefaultLookupConfig(),
					CrackOnValidate: crack,
				})
			if err != nil {
				return nil, err
			}
			res.Add(name, fmt.Sprintf("run%d", runIdx), (env.Clock.Now() - start).Seconds(), "s")
		}
	}
	return res, nil
}
