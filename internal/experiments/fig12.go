package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/query"
	"repro/internal/workload"
)

func init() {
	register("fig12a", fig12a)
	register("fig12b", fig12b)
	register("fig12c", fig12c)
	register("fig12d", fig12d)
}

// lookupStack enumerates Figure 12's cumulative optimization stack.
type lookupStack struct {
	name    string
	blocked bool // dataset built with blocked Bloom filters
	cfg     query.LookupConfig
}

func stacks(batchMem int) []lookupStack {
	return []lookupStack{
		{"naive", false, query.LookupConfig{EstRecordSize: 512}},
		{"batch", false, query.LookupConfig{Batched: true, BatchMemory: batchMem, EstRecordSize: 512}},
		{"batch/sLookup", false, query.LookupConfig{Batched: true, BatchMemory: batchMem, EstRecordSize: 512, Stateful: true}},
		{"batch/sLookup/bBF", true, query.LookupConfig{Batched: true, BatchMemory: batchMem, EstRecordSize: 512, Stateful: true}},
		{"batch/sLookup/bBF/pID", true, query.LookupConfig{Batched: true, BatchMemory: batchMem, EstRecordSize: 512, Stateful: true, PropagateIDs: true}},
	}
}

// queryDataset ingests the Figure 12 dataset: inserts only, no updates.
func queryDataset(s Scale, blocked, seqKeys bool) (*core.Dataset, *metrics.Env, error) {
	c := s.newConfig()
	c.blockedBloom = blocked
	ds, env, _, err := build(s, c)
	if err != nil {
		return nil, nil, err
	}
	wcfg := workload.DefaultConfig(1)
	wcfg.MessageMin, wcfg.MessageMax = s.MsgMin, s.MsgMax
	wcfg.UserIDRange = s.UserRange
	wcfg.SequentialIDs = seqKeys
	gen := workload.NewGenerator(wcfg)
	if _, err := insertAll(ds, env, gen, s.QueryRecords); err != nil {
		return nil, nil, err
	}
	return ds, env, nil
}

// selRange converts a selectivity (fraction) into a user-id range of the
// right expected width, anchored deterministically.
func selRange(s Scale, sel float64, anchor int) (lo, hi uint32) {
	width := int(sel * float64(s.UserRange))
	if width < 1 {
		width = 1
	}
	start := uint32((anchor*37_117 + 1000) % (int(s.UserRange) - width))
	return start, start + uint32(width) - 1
}

// measureQuery runs one secondary query and returns its virtual duration.
func measureQuery(ds *core.Dataset, env *metrics.Env, si *core.SecondaryIndex,
	lo, hi uint32, opts query.SecondaryQueryOptions) (time.Duration, int, error) {
	start := env.Clock.Now()
	res, err := query.SecondaryRange(ds, si, workload.UserKey(lo), workload.UserKey(hi), opts)
	if err != nil {
		return 0, 0, err
	}
	n := len(res.Records) + len(res.Keys)
	return env.Clock.Now() - start, n, nil
}

// avgQuery reproduces the paper's methodology fairly across series: the
// buffer cache is reset, one warm-up query (a different predicate) loads
// the internal pages and Bloom filters, then three fresh predicates are
// measured and averaged. Measured predicates never repeat, so leaf pages
// stay cold, as they would with a dataset far larger than the cache.
func avgQuery(ds *core.Dataset, env *metrics.Env, si *core.SecondaryIndex,
	s Scale, sel float64, opts query.SecondaryQueryOptions) (time.Duration, error) {
	ds.Config().Store.Cache().Reset()
	lo, hi := selRange(s, sel, 0)
	if _, _, err := measureQuery(ds, env, si, lo, hi, opts); err != nil {
		return 0, err
	}
	var total time.Duration
	const runs = 3
	for run := 1; run <= runs; run++ {
		lo, hi := selRange(s, sel, run)
		d, _, err := measureQuery(ds, env, si, lo, hi, opts)
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / runs, nil
}

// Selectivities are the paper's shifted up one decade: the dataset is
// ~1600x smaller than the paper's 80M records, so the paper's absolute
// percentages would select fewer than one record. One decade keeps result
// cardinalities in the same regime (tens of records for "low", up to half
// the dataset for "high"); see EXPERIMENTS.md.
func fig12a(s Scale) (*Result, error) {
	return fig12Sel(s, "fig12a", "Point lookup optimizations, low selectivity",
		[]float64{0.0001, 0.0002, 0.0005, 0.001, 0.0025}, false)
}

func fig12b(s Scale) (*Result, error) {
	return fig12Sel(s, "fig12b", "Point lookup optimizations, high selectivity (with scan baselines)",
		[]float64{0.01, 0.05, 0.10, 0.20, 0.50}, true)
}

func fig12Sel(s Scale, id, title string, sels []float64, withScan bool) (*Result, error) {
	res := &Result{Figure: id, Title: title}
	var standard, blocked *core.Dataset
	var stdEnv, blkEnv *metrics.Env
	for _, st := range stacks(16 << 20) {
		var ds *core.Dataset
		var env *metrics.Env
		var err error
		if st.blocked {
			if blocked == nil {
				blocked, blkEnv, err = queryDataset(s, true, false)
				if err != nil {
					return nil, err
				}
			}
			ds, env = blocked, blkEnv
		} else {
			if standard == nil {
				standard, stdEnv, err = queryDataset(s, false, false)
				if err != nil {
					return nil, err
				}
			}
			ds, env = standard, stdEnv
		}
		si := ds.Secondary("user0")
		for _, sel := range sels {
			d, err := avgQuery(ds, env, si, s, sel, query.SecondaryQueryOptions{
				Validation: query.NoValidation,
				Lookup:     st.cfg,
			})
			if err != nil {
				return nil, err
			}
			res.Add(st.name, fmt.Sprintf("%.4g%%", sel*100), d.Seconds(), "s")
		}
	}
	if withScan {
		d, err := measureFullScan(standard, stdEnv)
		if err != nil {
			return nil, err
		}
		res.Add("scan", "any", d.Seconds(), "s")
		seqDS, seqEnv, err := queryDataset(s, false, true)
		if err != nil {
			return nil, err
		}
		d2, err := measureFullScan(seqDS, seqEnv)
		if err != nil {
			return nil, err
		}
		res.Add("scan (seq keys)", "any", d2.Seconds(), "s")
	}
	return res, nil
}

// measureFullScan times a cold reconciled full scan of the primary index.
func measureFullScan(ds *core.Dataset, env *metrics.Env) (time.Duration, error) {
	run := func() (time.Duration, error) {
		ds.Config().Store.Cache().Reset()
		start := env.Clock.Now()
		it, err := ds.Primary().NewMergedIterator(lsm.IterOptions{
			Components:    ds.Primary().Components(),
			Mem:           ds.Primary().Mem(),
			HideAnti:      true,
			SkipInvisible: true,
		})
		if err != nil {
			return 0, err
		}
		for {
			_, ok, err := it.Next()
			if err != nil {
				return 0, err
			}
			if !ok {
				break
			}
		}
		return env.Clock.Now() - start, nil
	}
	if _, err := run(); err != nil { // warm
		return 0, err
	}
	return run()
}

func fig12c(s Scale) (*Result, error) {
	res := &Result{Figure: "fig12c", Title: "Impact of batch memory size"}
	ds, env, err := queryDataset(s, true, false)
	if err != nil {
		return nil, err
	}
	si := ds.Secondary("user0")
	batchSizes := []struct {
		name  string
		bytes int
	}{
		{"none", 0}, {"128KB", 128 << 10}, {"1MB", 1 << 20}, {"4MB", 4 << 20}, {"16MB", 16 << 20},
	}
	for _, sel := range []float64{0.001, 0.01, 0.05, 0.10} {
		series := fmt.Sprintf("selectivity %.4g%%", sel*100)
		for _, b := range batchSizes {
			cfg := query.LookupConfig{EstRecordSize: 512, Stateful: true}
			if b.bytes > 0 {
				cfg.Batched, cfg.BatchMemory = true, b.bytes
			}
			d, err := avgQuery(ds, env, si, s, sel, query.SecondaryQueryOptions{
				Validation: query.NoValidation, Lookup: cfg,
			})
			if err != nil {
				return nil, err
			}
			res.Add(series, b.name, d.Seconds(), "s")
		}
	}
	return res, nil
}

func fig12d(s Scale) (*Result, error) {
	res := &Result{Figure: "fig12d", Title: "Impact of sorting (batching destroys key order)"}
	ds, env, err := queryDataset(s, true, false)
	if err != nil {
		return nil, err
	}
	si := ds.Secondary("user0")
	sels := []float64{0.0001, 0.001, 0.01, 0.05, 0.10}
	for _, sel := range sels {
		x := fmt.Sprintf("%.4g%%", sel*100)
		// Plan 1: no batching (results already in pk order).
		d, err := avgQuery(ds, env, si, s, sel, query.SecondaryQueryOptions{
			Validation: query.NoValidation,
			Lookup:     query.LookupConfig{EstRecordSize: 512, Stateful: true},
		})
		if err != nil {
			return nil, err
		}
		res.Add("No Batching", x, d.Seconds(), "s")
		// Plan 2: batching, unsorted output.
		cfg := query.LookupConfig{Batched: true, BatchMemory: 16 << 20, EstRecordSize: 512, Stateful: true}
		d2, err := avgQuery(ds, env, si, s, sel, query.SecondaryQueryOptions{
			Validation: query.NoValidation, Lookup: cfg,
		})
		if err != nil {
			return nil, err
		}
		res.Add("Batching", x, d2.Seconds(), "s")
		// Plan 3: batching plus a final sort back into pk order, measured
		// with the same cold-leaves methodology as the other plans.
		ds.Config().Store.Cache().Reset()
		warmLo, warmHi := selRange(s, sel, 0)
		if _, err := query.SecondaryRange(ds, si, workload.UserKey(warmLo), workload.UserKey(warmHi),
			query.SecondaryQueryOptions{Validation: query.NoValidation, Lookup: cfg}); err != nil {
			return nil, err
		}
		var total time.Duration
		for run := 1; run <= 3; run++ {
			lo, hi := selRange(s, sel, run)
			start := env.Clock.Now()
			qres, err := query.SecondaryRange(ds, si, workload.UserKey(lo), workload.UserKey(hi),
				query.SecondaryQueryOptions{Validation: query.NoValidation, Lookup: cfg})
			if err != nil {
				return nil, err
			}
			query.SortRecordsByPK(env, qres.Records)
			total += env.Clock.Now() - start
		}
		res.Add("Batching+Sorting", x, (total / 3).Seconds(), "s")
	}
	return res, nil
}
