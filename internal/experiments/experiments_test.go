package experiments

import (
	"strings"
	"testing"
)

// tiny returns a minimal scale so every runner executes in milliseconds.
func tiny() Scale {
	s := Quick()
	s.QueryRecords = 3000
	s.IngestOps = 2500
	s.RepairChunk = 800
	s.RepairChunks = 2
	s.CacheBytes = 1 << 20
	s.MemoryBudget = 64 << 10
	s.MaxMergeable = 512 << 10
	return s
}

// TestEveryFigureRuns smoke-tests every registered experiment: each must
// complete and produce rows for every declared series.
func TestEveryFigureRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, tiny())
			if err != nil {
				t.Fatal(err)
			}
			if res.Figure != id {
				t.Errorf("figure = %q", res.Figure)
			}
			if len(res.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range res.Rows {
				if row.Series == "" || row.X == "" {
					t.Errorf("malformed row %+v", row)
				}
				if row.Value < 0 {
					t.Errorf("negative value %+v", row)
				}
			}
		})
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := Run("fig999", Quick()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation section must be present.
	want := []string{
		"fig12a", "fig12b", "fig12c", "fig12d",
		"fig13", "fig14", "fig15a", "fig15b",
		"fig16", "fig17", "fig18", "fig19",
		"fig20", "fig21", "fig22",
		"fig23a", "fig23b", "fig23c",
		"abA-policy", "abB-wal", "abC-crack",
	}
	have := strings.Join(IDs(), ",")
	for _, id := range want {
		if !strings.Contains(have, id) {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestResultPrint(t *testing.T) {
	res := &Result{Figure: "figX", Title: "demo"}
	res.Add("a", "x1", 1.5, "s")
	res.Add("a", "x2", 2.5, "s")
	res.Add("b", "x1", 3.5, "s")
	var sb strings.Builder
	res.Print(&sb)
	out := sb.String()
	for _, want := range []string{"figX", "demo", "a", "b", "x1=1.5s", "x2=2.5s"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestScalesSane(t *testing.T) {
	for _, s := range []Scale{Default(), Quick(), tiny()} {
		if s.QueryRecords <= 0 || s.IngestOps <= 0 || s.MemoryBudget <= 0 {
			t.Errorf("bad scale %+v", s)
		}
		if int64(s.MemoryBudget) >= s.CacheBytes {
			t.Errorf("memory budget should be below cache size: %+v", s)
		}
	}
}

func TestThroughputHelper(t *testing.T) {
	if throughput(1000, 0) != 0 {
		t.Fatal("zero duration must give zero throughput")
	}
	if got := throughput(2000, 1e9); got != 2.0 { // 2000 ops / 1 s = 2 kops
		t.Fatalf("throughput = %v", got)
	}
}
