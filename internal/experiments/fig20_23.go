package experiments

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kv"
	"repro/internal/repair"
	"repro/internal/workload"
)

func init() {
	register("fig20", fig20)
	register("fig21", fig21)
	register("fig22", fig22)
	register("fig23a", fig23a)
	register("fig23b", fig23b)
	register("fig23c", fig23c)
}

// repairVariant names one repair method of Section 6.5.
type repairVariant struct {
	name string
	run  func(ds *core.Dataset) error
	// correlated builds the dataset with the correlated merge policy; the
	// Bloom-filter optimization is useless without it (Section 4.4: with
	// independently merged trees the pk-index Bloom filters report all
	// positives and only add overhead).
	correlated bool
}

func repairVariants(numSecondaries int) []repairVariant {
	putAntiFor := func(ds *core.Dataset) []repair.SecondaryTarget {
		var targets []repair.SecondaryTarget
		for _, si := range ds.Secondaries() {
			si := si
			targets = append(targets, repair.SecondaryTarget{
				Tree:    si.Tree,
				Extract: si.Spec.Extract,
				PutAnti: func(sk, pk []byte, ts int64) {
					si.Tree.Put(kv.Entry{Key: kv.ComposeKey(sk, pk), TS: ts, Anti: true})
				},
			})
		}
		return targets
	}
	return []repairVariant{
		{"primary repair", func(ds *core.Dataset) error {
			return repair.PrimaryRepair(ds.Primary(), putAntiFor(ds), false, ds.NextTS())
		}, false},
		{"primary repair (merge)", func(ds *core.Dataset) error {
			return repair.PrimaryRepair(ds.Primary(), putAntiFor(ds), true, ds.NextTS())
		}, false},
		{"secondary repair", func(ds *core.Dataset) error {
			for _, si := range ds.Secondaries() {
				if err := repair.RepairAll(si.Tree, ds.PKIndex(), repair.Options{}); err != nil {
					return err
				}
			}
			return nil
		}, false},
		{"secondary repair (bf)", func(ds *core.Dataset) error {
			for _, si := range ds.Secondaries() {
				if err := repair.RepairAll(si.Tree, ds.PKIndex(), repair.Options{UseBloom: true}); err != nil {
					return err
				}
			}
			return nil
		}, true},
	}
}

// runRepairTrend drives the Figures 20-22 protocol: ingest in chunks; after
// each chunk, flush and trigger a full repair, reporting the repair's
// virtual time as data accumulates.
func runRepairTrend(s Scale, res *Result, seriesSuffix string, updateRatio float64,
	msgMin, msgMax, numSecondaries int) error {
	for _, v := range repairVariants(numSecondaries) {
		c := s.newConfig()
		c.strategy = core.Validation
		c.numSecondary = numSecondaries
		c.correlated = v.correlated
		ds, env, _, err := build(s, c)
		if err != nil {
			return err
		}
		wcfg := workload.DefaultConfig(31)
		wcfg.MessageMin, wcfg.MessageMax = msgMin, msgMax
		wcfg.UserIDRange = s.UserRange
		wcfg.UpdateRatio = updateRatio
		gen := workload.NewGenerator(wcfg)
		total := 0
		for chunk := 1; chunk <= s.RepairChunks; chunk++ {
			for i := 0; i < s.RepairChunk; i++ {
				op := gen.Next()
				if err := ds.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
					return err
				}
			}
			total += s.RepairChunk
			if err := ds.FlushAll(); err != nil {
				return err
			}
			start := env.Clock.Now()
			if err := v.run(ds); err != nil {
				return err
			}
			d := env.Clock.Now() - start
			res.Add(v.name+seriesSuffix, fmt.Sprintf("%dk", total/1000), d.Seconds(), "s")
		}
	}
	return nil
}

// fig20 — basic repair performance at 0% and 50% update ratios.
func fig20(s Scale) (*Result, error) {
	res := &Result{Figure: "fig20", Title: "Index repair time as data accumulates"}
	if err := runRepairTrend(s, res, " u=0%", 0, s.MsgMin, s.MsgMax, 1); err != nil {
		return nil, err
	}
	if err := runRepairTrend(s, res, " u=50%", 0.5, s.MsgMin, s.MsgMax, 1); err != nil {
		return nil, err
	}
	return res, nil
}

// fig21 — repair with large (2x) records, 10% updates: primary repair
// degrades with record size, secondary repair does not.
func fig21(s Scale) (*Result, error) {
	res := &Result{Figure: "fig21", Title: "Repair with large records (10% updates)"}
	if err := runRepairTrend(s, res, "", 0.10, 2*s.MsgMin, 2*s.MsgMax, 1); err != nil {
		return nil, err
	}
	return res, nil
}

// fig22 — repair with 5 secondary indexes, 10% updates.
func fig22(s Scale) (*Result, error) {
	res := &Result{Figure: "fig22", Title: "Repair with 5 secondary indexes (10% updates)"}
	if err := runRepairTrend(s, res, "", 0.10, s.MsgMin, s.MsgMax, 5); err != nil {
		return nil, err
	}
	return res, nil
}

// ccSetup builds a Mutable-bitmap dataset with exactly numComponents flushed
// components of componentRecords records each, merges disabled.
func ccSetup(s Scale, cc core.CCMethod, componentRecords, recordSize, numComponents int) (*core.Dataset, *workload.Generator, error) {
	c := s.newConfig()
	c.strategy = core.MutableBitmap
	c.cc = cc
	c.noPolicy = true
	c.memoryBudget = 1 << 30 // flush manually
	ds, _, _, err := build(s, c)
	if err != nil {
		return nil, nil, err
	}
	wcfg := workload.DefaultConfig(33)
	wcfg.MessageMin, wcfg.MessageMax = recordSize, recordSize
	wcfg.UserIDRange = s.UserRange
	gen := workload.NewGenerator(wcfg)
	for comp := 0; comp < numComponents; comp++ {
		for i := 0; i < componentRecords; i++ {
			op := gen.Next()
			if err := ds.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
				return nil, nil, err
			}
		}
		if err := ds.FlushAll(); err != nil {
			return nil, nil, err
		}
	}
	return ds, gen, nil
}

// measureCCMerge merges all components under concurrent ingestion at
// maximum speed, returning the merge's real wall-clock time (lock overhead
// is a real-CPU effect the virtual clock cannot see).
func measureCCMerge(ds *core.Dataset, gen *workload.Generator, updateRatio float64) (time.Duration, error) {
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Concurrent writers: upserts at max speed, updateRatio of them
	// hitting past keys (those interact with the merge via bitmaps).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wcfg := workload.DefaultConfig(seed)
			wcfg.MessageMin, wcfg.MessageMax = 100, 100
			wcfg.UpdateRatio = updateRatio
			g := workload.NewGenerator(wcfg)
			// Seed some keys so updates have targets.
			for i := 0; i < 100; i++ {
				op := g.Next()
				ds.Upsert(op.Tweet.PK(), op.Tweet.Encode())
			}
			for !stop.Load() {
				op := g.Next()
				ds.Upsert(op.Tweet.PK(), op.Tweet.Encode())
			}
		}(int64(100 + w))
	}
	n := ds.Primary().NumDiskComponents()
	nk := ds.PKIndex().NumDiskComponents()
	start := time.Now() //lsm:clocksource-ok this experiment measures real merge/writer contention; wall time is the quantity under test
	_, err := ds.MergePrimaryRange(0, n, 0, nk)
	elapsed := time.Since(start) //lsm:clocksource-ok wall time is the quantity under test
	stop.Store(true)
	wg.Wait()
	return elapsed, err
}

func ccVariants() []core.CCMethod {
	return []core.CCMethod{core.NoCC, core.SideFile, core.Lock}
}

// medianCCMerge repeats the build-then-merge measurement three times and
// reports the median wall time, damping scheduler and allocator noise.
func medianCCMerge(s Scale, cc core.CCMethod, componentRecords, recordSize int, upd float64) (time.Duration, error) {
	var runs []time.Duration
	for i := 0; i < 3; i++ {
		ds, gen, err := ccSetup(s, cc, componentRecords, recordSize, 4)
		if err != nil {
			return 0, err
		}
		d, err := measureCCMerge(ds, gen, upd)
		if err != nil {
			return 0, err
		}
		runs = append(runs, d)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	return runs[1], nil
}

// fig23a — CC overhead vs update ratio of the concurrent writers.
func fig23a(s Scale) (*Result, error) {
	res := &Result{Figure: "fig23a", Title: "Mutable-bitmap CC overhead vs update ratio (wall time)"}
	recs := s.IngestOps / 8
	for _, cc := range ccVariants() {
		for _, upd := range []float64{0, 0.2, 0.4, 0.8, 1.0} {
			d, err := medianCCMerge(s, cc, recs, 100, upd)
			if err != nil {
				return nil, err
			}
			res.Add(cc.String(), fmt.Sprintf("%.0f%%", upd*100), d.Seconds(), "s")
		}
	}
	return res, nil
}

// fig23b — CC overhead vs record size.
func fig23b(s Scale) (*Result, error) {
	res := &Result{Figure: "fig23b", Title: "Mutable-bitmap CC overhead vs record size (wall time)"}
	recs := s.IngestOps / 8
	for _, cc := range ccVariants() {
		for _, size := range []int{20, 100, 200, 500, 1000} {
			d, err := medianCCMerge(s, cc, recs, size, 0.5)
			if err != nil {
				return nil, err
			}
			res.Add(cc.String(), fmt.Sprintf("%dB", size), d.Seconds(), "s")
		}
	}
	return res, nil
}

// fig23c — CC overhead vs component size (records per merged component).
func fig23c(s Scale) (*Result, error) {
	res := &Result{Figure: "fig23c", Title: "Mutable-bitmap CC overhead vs component size (wall time)"}
	base := s.IngestOps / 16
	for _, cc := range ccVariants() {
		for mult := 1; mult <= 5; mult++ {
			d, err := medianCCMerge(s, cc, base*mult, 100, 0.5)
			if err != nil {
				return nil, err
			}
			res.Add(cc.String(), fmt.Sprintf("%dx", mult), d.Seconds(), "s")
		}
	}
	return res, nil
}
