// Package experiments reproduces every figure of the paper's evaluation
// (Section 6). Each runner builds the scaled-down analogue of the paper's
// setup (see DESIGN.md's substitution table), drives the synthetic tweet
// workload, and reports the same series the paper plots, measured on the
// virtual cost-model clock (except Figure 23, which measures real wall
// time because lock contention is a real-CPU effect).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/lsm"
	"repro/internal/metrics"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Row is one data point: a series name, an x-axis label, and a value.
type Row struct {
	Series string
	X      string
	Value  float64
	Unit   string
}

// Result is one experiment's output.
type Result struct {
	Figure string
	Title  string
	Rows   []Row
}

// Add appends a row.
func (r *Result) Add(series, x string, value float64, unit string) {
	r.Rows = append(r.Rows, Row{Series: series, X: x, Value: value, Unit: unit})
}

// Print renders the result as an aligned table, series grouped.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Figure, r.Title)
	series := make([]string, 0)
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.Series] {
			seen[row.Series] = true
			series = append(series, row.Series)
		}
	}
	for _, s := range series {
		fmt.Fprintf(w, "%-28s", s)
		for _, row := range r.Rows {
			if row.Series == s {
				fmt.Fprintf(w, "  %s=%.4g%s", row.X, row.Value, row.Unit)
			}
		}
		fmt.Fprintln(w)
	}
}

// Scale holds the scaled-down experiment knobs. The paper's absolute sizes
// (80-100 M records, 30 GB, 128 MB budgets, 2 GB caches) shrink by a
// common factor so every effect regime is preserved: dataset >> cache,
// multiple components per level, pk index smaller than cache.
type Scale struct {
	// QueryRecords is the dataset size for query experiments (paper: 80M).
	QueryRecords int
	// IngestOps is the operation count for ingestion experiments.
	IngestOps int
	// RepairChunk and RepairChunks drive Figures 20-22 (paper: 10 chunks
	// of 10M records).
	RepairChunk, RepairChunks int
	// MsgMin/MsgMax bound tweet message sizes (450-550 in the paper).
	MsgMin, MsgMax int
	// UserRange bounds user ids (100K in the paper).
	UserRange uint32
	// PageSize is the device page size.
	PageSize int
	// CacheBytes is the buffer cache size.
	CacheBytes int64
	// MemoryBudget is the per-dataset memory-component budget.
	MemoryBudget int
	// MaxMergeable caps mergeable component size (paper: 1 GB).
	MaxMergeable int64
}

// Default returns the standard scaled configuration: ~25 MB datasets, 4 MB
// cache, 512 KB memory budget, 4 MB component cap — every ratio from the
// paper's setup (dataset/cache ≈ 8x, budget/dataset ≈ 2%) is preserved.
func Default() Scale {
	return Scale{
		QueryRecords: 50_000,
		IngestOps:    40_000,
		RepairChunk:  8_000,
		RepairChunks: 5,
		MsgMin:       450,
		MsgMax:       550,
		UserRange:    100_000,
		PageSize:     32 << 10,
		CacheBytes:   4 << 20,
		MemoryBudget: 512 << 10,
		MaxMergeable: 4 << 20,
	}
}

// Quick returns a reduced configuration for tests.
func Quick() Scale {
	s := Default()
	s.QueryRecords = 12_000
	s.IngestOps = 10_000
	s.RepairChunk = 3_000
	s.RepairChunks = 3
	s.CacheBytes = 3 << 20
	s.MemoryBudget = 128 << 10
	s.MaxMergeable = 1 << 20
	return s
}

// Runner is one experiment.
type Runner func(Scale) (*Result, error)

// Registry maps figure IDs to runners.
var Registry = map[string]Runner{}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func register(id string, r Runner) { Registry[id] = r }

// Run executes one experiment by ID.
func Run(id string, s Scale) (*Result, error) {
	r, ok := Registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	return r(s)
}

// dsConfig bundles the dataset construction knobs one experiment varies.
type dsConfig struct {
	strategy      core.Strategy
	cc            core.CCMethod
	device        storage.Profile
	cacheBytes    int64
	usePKIndex    bool
	numSecondary  int
	mergeRepair   bool
	correlated    bool
	repairBloom   bool
	blockedBloom  bool
	noPolicy      bool
	policy        lsm.Policy // overrides the default tiering policy
	disableWAL    bool
	maxMergeable  int64
	memoryBudget  int
	noRangeFilter bool
}

func (s Scale) newConfig() dsConfig {
	device := storage.ScaledHDD(s.PageSize)
	// The paper's 4 MB read-ahead assumes the 2 GB cache can hold one
	// window per component; scale the window down with the cache so a
	// multi-component merge scan does not thrash (see DESIGN.md).
	device.ReadAheadPages = 8
	return dsConfig{
		strategy:     core.Eager,
		device:       device,
		cacheBytes:   s.CacheBytes,
		usePKIndex:   true,
		numSecondary: 1,
		maxMergeable: s.MaxMergeable,
		memoryBudget: s.MemoryBudget,
	}
}

// build opens a dataset per the config. Every secondary index beyond the
// first indexes the same user id (the paper's Figure 15b/22 setup simply
// adds more indexes to maintain).
func build(s Scale, c dsConfig) (*core.Dataset, *metrics.Env, *storage.Store, error) {
	env := metrics.NewEnv()
	disk := storage.NewDisk(c.device, env)
	store := storage.NewStore(disk, c.cacheBytes, env)
	cfg := core.Config{
		Store:            store,
		Strategy:         c.strategy,
		CC:               c.cc,
		MemoryBudget:     c.memoryBudget,
		UsePKIndex:       c.usePKIndex,
		CorrelatedMerges: c.correlated,
		MergeRepair:      c.mergeRepair,
		RepairBloomOpt:   c.repairBloom,
		BloomFPR:         0.01,
		BlockedBloom:     c.blockedBloom,
		DisableWAL:       c.disableWAL,
		Seed:             42,
	}
	if !c.noRangeFilter {
		cfg.FilterExtract = workload.CreationOf
	}
	switch {
	case c.policy != nil:
		cfg.Policy = c.policy
	case !c.noPolicy:
		cfg.Policy = lsm.NewTiering(c.maxMergeable)
	}
	for i := 0; i < c.numSecondary; i++ {
		cfg.Secondaries = append(cfg.Secondaries, core.SecondarySpec{
			Name:    fmt.Sprintf("user%d", i),
			Extract: workload.UserIDOf,
		})
	}
	ds, err := core.Open(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return ds, env, store, nil
}

// ingest drives n generator operations as upserts, returning virtual time
// checkpoints at each quarter.
func ingest(ds *core.Dataset, env *metrics.Env, gen *workload.Generator, n int) ([4]time.Duration, error) {
	var marks [4]time.Duration
	for i := 0; i < n; i++ {
		op := gen.Next()
		if err := ds.Upsert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			return marks, err
		}
		for q := 0; q < 4; q++ {
			if i+1 == (q+1)*n/4 {
				marks[q] = env.Clock.Now()
			}
		}
	}
	return marks, nil
}

// insertAll drives n generator operations as inserts (Figure 13's
// uniqueness-checked path).
func insertAll(ds *core.Dataset, env *metrics.Env, gen *workload.Generator, n int) ([4]time.Duration, error) {
	var marks [4]time.Duration
	for i := 0; i < n; i++ {
		op := gen.Next()
		if _, err := ds.Insert(op.Tweet.PK(), op.Tweet.Encode()); err != nil {
			return marks, err
		}
		for q := 0; q < 4; q++ {
			if i+1 == (q+1)*n/4 {
				marks[q] = env.Clock.Now()
			}
		}
	}
	return marks, nil
}

// throughput converts (ops, duration) to kilo-ops per simulated second.
func throughput(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1000
}
