package bitmap

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestImmutableSetAndCount(t *testing.T) {
	b := NewImmutable(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	b.Set(500) // out of range: ignored
	if !b.IsSet(0) || !b.IsSet(64) || !b.IsSet(129) {
		t.Fatal("set bits missing")
	}
	if b.IsSet(1) || b.IsSet(130) || b.IsSet(-1) {
		t.Fatal("unset bits reported set")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d", b.Count())
	}
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestNilImmutableSafe(t *testing.T) {
	var b *Immutable
	if b.IsSet(5) || b.Count() != 0 || b.Len() != 0 {
		t.Fatal("nil bitmap must behave as all-valid")
	}
}

func TestMutableSetUnset(t *testing.T) {
	b := NewMutable(100)
	if !b.Set(42) {
		t.Fatal("first Set must report change")
	}
	if b.Set(42) {
		t.Fatal("second Set must be a no-op")
	}
	if !b.IsSet(42) {
		t.Fatal("bit lost")
	}
	if !b.Unset(42) {
		t.Fatal("Unset must report change")
	}
	if b.Unset(42) {
		t.Fatal("second Unset must be a no-op")
	}
	if b.IsSet(42) {
		t.Fatal("bit survived Unset")
	}
	if b.Set(-1) || b.Set(100) {
		t.Fatal("out-of-range Set must fail")
	}
}

func TestNilMutableSafe(t *testing.T) {
	var b *Mutable
	if b.IsSet(5) || b.Count() != 0 || b.Len() != 0 {
		t.Fatal("nil mutable bitmap must behave as all-valid")
	}
}

func TestMutableConcurrentSetsExactlyOnce(t *testing.T) {
	// The paper requires latching/CAS so two writers never lose a bit
	// (Section 5.2). N goroutines race to set every bit; each bit must be
	// claimed exactly once.
	const n = 10000
	b := NewMutable(n)
	var claimed [n]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				pos := int64(rng.Intn(n))
				if b.Set(pos) {
					mu.Lock()
					claimed[pos]++
					mu.Unlock()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	for i, c := range claimed {
		if c > 1 {
			t.Fatalf("bit %d claimed %d times", i, c)
		}
		if c == 1 && !b.IsSet(int64(i)) {
			t.Fatalf("claimed bit %d not set", i)
		}
	}
	if got := b.Count(); got == 0 || got > n {
		t.Fatalf("Count = %d", got)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	b := NewMutable(64)
	b.Set(1)
	snap := b.Snapshot()
	b.Set(2)
	if !snap.IsSet(1) {
		t.Fatal("snapshot lost existing bit")
	}
	if snap.IsSet(2) {
		t.Fatal("snapshot sees later mutation")
	}
}

func TestMutableMatchesModel(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewMutable(256)
		model := make(map[int64]bool)
		for _, op := range ops {
			pos := int64(op % 256)
			if op%2 == 0 {
				b.Set(pos)
				model[pos] = true
			} else {
				b.Unset(pos)
				model[pos] = false
			}
		}
		for pos, want := range model {
			if b.IsSet(pos) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSideFile(t *testing.T) {
	s := NewSideFile()
	if !s.Append([]byte("k1")) || !s.Append([]byte("k2")) {
		t.Fatal("append to open side-file failed")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	keys := s.Close()
	if len(keys) != 2 || string(keys[0]) != "k1" {
		t.Fatalf("Close returned %q", keys)
	}
	if s.Append([]byte("k3")) {
		t.Fatal("append after Close must fail (writer falls back to the new component)")
	}
}

func TestSideFileCopiesKeys(t *testing.T) {
	s := NewSideFile()
	k := []byte("abc")
	s.Append(k)
	k[0] = 'X'
	if string(s.Close()[0]) != "abc" {
		t.Fatal("side-file must copy appended keys")
	}
}

func TestSideFileConcurrent(t *testing.T) {
	s := NewSideFile()
	var wg sync.WaitGroup
	var accepted sync.Map
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := []byte{byte(g), byte(i >> 8), byte(i)}
				if s.Append(k) {
					accepted.Store(string(k), true)
				}
			}
		}(g)
	}
	wg.Wait()
	keys := s.Close()
	n := 0
	accepted.Range(func(_, _ any) bool { n++; return true })
	if len(keys) != n {
		t.Fatalf("side-file holds %d keys, writers recorded %d", len(keys), n)
	}
}
