// Package bitmap provides the two bitmap flavors from the paper:
//
//   - Immutable: written once by an index-repair operation (Section 4.4,
//     Fig 7) to mark obsolete secondary-index entries; readers skip entries
//     whose bit is 1 and the entries are physically removed at the next merge.
//   - Mutable: attached to primary/primary-key-index disk components by the
//     Mutable-bitmap strategy (Section 5); writers flip bits 0->1 to delete
//     records in immutable components (aborts flip 1->0), using
//     compare-and-swap so two writers never lose an update.
//
// The package also implements the side-file used by the Side-file
// concurrency-control method for concurrent flush/merge (Section 5.3).
package bitmap

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrCorrupt reports a malformed serialized bitmap.
var ErrCorrupt = errors.New("bitmap: corrupt serialized bitmap")

// appendWords serializes (n, words) as a varint length plus little-endian
// 64-bit words — the common wire form of both bitmap flavors, used by the
// durable manifest.
func appendWords(dst []byte, n int64, words []uint64) []byte {
	dst = binary.AppendVarint(dst, n)
	for _, w := range words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// decodeWords parses appendWords output.
func decodeWords(data []byte) (n int64, words []uint64, err error) {
	n, k := binary.Varint(data)
	if k <= 0 || n < 0 {
		return 0, nil, ErrCorrupt
	}
	data = data[k:]
	nw := int((n + 63) / 64)
	if len(data) != nw*8 {
		return 0, nil, ErrCorrupt
	}
	words = make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return n, words, nil
}

// Immutable is a fixed bitmap over entry ordinals; bit=1 marks the entry
// invalid (obsolete). The zero-length bitmap treats every entry as valid.
type Immutable struct {
	bits []uint64
	n    int64
}

// NewImmutable creates an all-zero (all-valid) bitmap of n bits.
func NewImmutable(n int64) *Immutable {
	return &Immutable{bits: make([]uint64, (n+63)/64), n: n}
}

// Set marks ordinal i invalid. Only used while the bitmap is being built.
func (b *Immutable) Set(i int64) {
	if i >= 0 && i < b.n {
		b.bits[i/64] |= 1 << (uint(i) % 64)
	}
}

// IsSet reports whether ordinal i is marked invalid.
func (b *Immutable) IsSet(i int64) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return b.bits[i/64]&(1<<(uint(i)%64)) != 0
}

// Count returns the number of invalid entries.
func (b *Immutable) Count() int64 {
	if b == nil {
		return 0
	}
	var c int64
	for _, w := range b.bits {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// Len returns the number of bits.
func (b *Immutable) Len() int64 {
	if b == nil {
		return 0
	}
	return b.n
}

// Marshal serializes the bitmap for the durable manifest. A nil bitmap
// marshals to nil.
func (b *Immutable) Marshal() []byte {
	if b == nil {
		return nil
	}
	return appendWords(nil, b.n, b.bits)
}

// UnmarshalImmutable reconstructs a Marshal-ed immutable bitmap; nil input
// yields a nil bitmap.
func UnmarshalImmutable(data []byte) (*Immutable, error) {
	if len(data) == 0 {
		return nil, nil
	}
	n, words, err := decodeWords(data)
	if err != nil {
		return nil, err
	}
	return &Immutable{bits: words, n: n}, nil
}

// Mutable is a concurrently updatable validity bitmap. Bits are flipped with
// compare-and-swap, the in-memory analogue of the paper's latching /
// compare-and-swap requirement for bitmap bytes (Section 5.2).
type Mutable struct {
	bits []uint64 // accessed atomically
	n    int64
}

// NewMutable creates an all-valid mutable bitmap of n bits.
func NewMutable(n int64) *Mutable {
	return &Mutable{bits: make([]uint64, (n+63)/64), n: n}
}

// Set marks ordinal i deleted (0 -> 1). It reports whether the bit changed.
func (b *Mutable) Set(i int64) bool {
	if i < 0 || i >= b.n {
		return false
	}
	addr := &b.bits[i/64]
	mask := uint64(1) << (uint(i) % 64)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
	}
}

// Unset clears ordinal i (1 -> 0); used only by transaction aborts.
func (b *Mutable) Unset(i int64) bool {
	if i < 0 || i >= b.n {
		return false
	}
	addr := &b.bits[i/64]
	mask := uint64(1) << (uint(i) % 64)
	for {
		old := atomic.LoadUint64(addr)
		if old&mask == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old&^mask) {
			return true
		}
	}
}

// IsSet reports whether ordinal i is marked deleted.
func (b *Mutable) IsSet(i int64) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return atomic.LoadUint64(&b.bits[i/64])&(1<<(uint(i)%64)) != 0
}

// Len returns the number of bits.
func (b *Mutable) Len() int64 {
	if b == nil {
		return 0
	}
	return b.n
}

// Count returns the number of deleted entries.
func (b *Mutable) Count() int64 {
	if b == nil {
		return 0
	}
	var c int64
	for i := range b.bits {
		w := atomic.LoadUint64(&b.bits[i])
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// Marshal serializes the bitmap's current state for the durable manifest.
// Concurrent Sets may or may not be captured — the manifest's WAL replay
// re-applies any that are not (Set is idempotent). A nil bitmap marshals to
// nil.
func (b *Mutable) Marshal() []byte {
	if b == nil {
		return nil
	}
	words := make([]uint64, len(b.bits))
	for i := range b.bits {
		words[i] = atomic.LoadUint64(&b.bits[i])
	}
	return appendWords(nil, b.n, words)
}

// UnmarshalMutable reconstructs a Marshal-ed mutable bitmap; nil input
// yields a nil bitmap.
func UnmarshalMutable(data []byte) (*Mutable, error) {
	if len(data) == 0 {
		return nil, nil
	}
	n, words, err := decodeWords(data)
	if err != nil {
		return nil, err
	}
	return &Mutable{bits: words, n: n}, nil
}

// Snapshot copies the current state into an Immutable bitmap; the Side-file
// method scans old components against such snapshots so concurrent deletes
// do not interfere with the component builder (Fig 11, initialization phase).
func (b *Mutable) Snapshot() *Immutable {
	if b == nil {
		return nil
	}
	im := NewImmutable(b.n)
	for i := range b.bits {
		im.bits[i] = atomic.LoadUint64(&b.bits[i])
	}
	return im
}

// SideFile buffers keys deleted while a new component is being built
// (Section 5.3, Side-file method). Writers append until the builder closes
// the file; append-after-close fails and the writer falls back to updating
// the new component directly.
type SideFile struct {
	mu     sync.Mutex
	keys   [][]byte
	closed bool
}

// NewSideFile returns an open, empty side-file.
func NewSideFile() *SideFile { return &SideFile{} }

// Append adds a deleted key; it reports false if the side-file is closed.
func (s *SideFile) Append(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.keys = append(s.keys, append([]byte(nil), key...))
	return true
}

// Close seals the side-file and returns the buffered keys.
func (s *SideFile) Close() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return s.keys
}

// Len returns the number of buffered keys.
func (s *SideFile) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}
