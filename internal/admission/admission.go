package admission

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Class classifies a request for weighting. Weights approximate relative
// engine cost; the defaults below are deliberately coarse — the budget
// bounds concurrency, not bytes.
type Class uint8

// Request classes.
const (
	ClassRead Class = iota
	ClassWrite
	ClassBatch
	ClassQuery
	ClassScan
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	case ClassBatch:
		return "batch"
	case ClassQuery:
		return "query"
	case ClassScan:
		return "scan"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// defaultWeights is the per-class cost approximation used when
// Config.Weights leaves a class zero.
var defaultWeights = [NumClasses]int64{
	ClassRead:  1,
	ClassWrite: 1,
	ClassBatch: 4,
	ClassQuery: 2,
	ClassScan:  4,
}

// Errors returned by Acquire. The server maps them onto the wire codes
// (CodeOverloaded, CodeRetryLater, CodeShuttingDown).
var (
	// ErrOverloaded reports a shed request: the budget and queue are full,
	// or the queue deadline expired before a slot freed up.
	ErrOverloaded = errors.New("admission: overloaded")
	// ErrRateLimited reports a request rejected by its tenant's rate
	// limit. Unlike ErrOverloaded it says nothing about server load — the
	// client should retry later, not back off harder.
	ErrRateLimited = errors.New("admission: tenant rate limited")
	// ErrClosed reports an Acquire against a closed controller.
	ErrClosed = errors.New("admission: controller closed")
)

// Config configures a Controller.
type Config struct {
	// Budget is the total weighted in-flight budget (required, > 0).
	Budget int64
	// MaxQueue caps the FIFO wait queue. 0 means 2×Budget; negative
	// disables queueing entirely (over-budget requests shed immediately).
	MaxQueue int
	// QueueDeadline is the longest a request may wait queued before it is
	// shed. 0 means the 2ms default — shedding must stay fast enough that
	// a shed round trip is cheap for the client to retry.
	QueueDeadline time.Duration
	// Weights overrides the per-class weights (zero entries keep the
	// defaults). A weight above Budget is clamped to it.
	Weights [NumClasses]int64
	// TenantRate is the per-tenant admission rate limit in requests per
	// second (0 = unlimited). Requests without a tenant tag are exempt.
	TenantRate float64
	// TenantBurst is the tenant token-bucket burst (0 = max(1, TenantRate)).
	TenantBurst float64
}

const (
	defaultQueueDeadline = 2 * time.Millisecond
)

// waiter states. Transitions happen under Controller.mu; the terminal
// state is published to the waiting goroutine by close(ready).
const (
	stateQueued = iota
	stateAdmitted
	stateShed
)

type waiter struct {
	class  Class
	tenant string
	weight int64
	ready  chan struct{} // closed on admit or shed
	state  int
	err    error // set when state == stateShed
}

type tenantState struct {
	inflight    int64
	admitted    int64
	shed        int64
	rateLimited int64
	tokens      float64
	last        time.Time
}

// Controller is the server-wide admission controller. All methods are
// safe for concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inflight int64
	queue    []*waiter
	tenants  map[string]*tenantState
	closed   bool

	admitted          atomic.Int64
	admittedAfterWait atomic.Int64
	shedQueueFull     atomic.Int64
	shedDeadline      atomic.Int64
	shedFairShare     atomic.Int64
	shedRateLimited   atomic.Int64

	// shedHist records the fail-fast latency of shed requests (Acquire
	// entry to shed), the bound the overload acceptance criteria pin.
	shedHist obs.Hist
}

// New builds a controller. Budget must be positive.
func New(cfg Config) *Controller {
	if cfg.Budget <= 0 {
		cfg.Budget = 1
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = int(2 * cfg.Budget)
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.QueueDeadline <= 0 {
		cfg.QueueDeadline = defaultQueueDeadline
	}
	for c := Class(0); c < NumClasses; c++ {
		if cfg.Weights[c] <= 0 {
			cfg.Weights[c] = defaultWeights[c]
		}
		if cfg.Weights[c] > cfg.Budget {
			cfg.Weights[c] = cfg.Budget
		}
	}
	if cfg.TenantRate > 0 && cfg.TenantBurst <= 0 {
		cfg.TenantBurst = max(1, cfg.TenantRate)
	}
	return &Controller{cfg: cfg, tenants: make(map[string]*tenantState)}
}

// Weight reports the configured weight of a class.
func (c *Controller) Weight(class Class) int64 {
	if class >= NumClasses {
		return 1
	}
	return c.cfg.Weights[class]
}

// Acquire admits one request of the given class (and optional tenant
// tag), blocking in the FIFO queue up to the queue deadline when the
// budget is full. On success it returns the release function the caller
// must invoke exactly once when the request finishes. On failure the
// request was shed: ErrOverloaded, ErrRateLimited or ErrClosed.
func (c *Controller) Acquire(class Class, tenant string) (func(), error) {
	w := c.Weight(class)
	start := time.Now()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	ts := c.tenantLocked(tenant)
	if ts != nil && !c.tenantTokenLocked(ts, start) {
		ts.rateLimited++
		c.mu.Unlock()
		c.shedRateLimited.Add(1)
		c.shedHist.Record(time.Since(start))
		return nil, fmt.Errorf("%w: tenant %q over %g req/s", ErrRateLimited, tenant, c.cfg.TenantRate)
	}
	// Fast path: budget available and nobody queued ahead (FIFO).
	if len(c.queue) == 0 && c.inflight+w <= c.cfg.Budget {
		c.inflight += w
		if ts != nil {
			ts.inflight += w
			ts.admitted++
		}
		c.mu.Unlock()
		c.admitted.Add(1)
		return c.releaseFunc(tenant, w), nil
	}
	if len(c.queue) >= c.cfg.MaxQueue {
		// Queue full. Fair share: if a queued waiter belongs to a tenant
		// consuming strictly more than this request's tenant, shed that
		// waiter instead and take its slot.
		victim := c.fairShareVictimLocked(tenant)
		if victim < 0 {
			if ts != nil {
				ts.shed++
			}
			c.mu.Unlock()
			c.shedQueueFull.Add(1)
			c.shedHist.Record(time.Since(start))
			return nil, fmt.Errorf("%w: admission queue full", ErrOverloaded)
		}
		c.shedWaiterLocked(victim, fmt.Errorf("%w: displaced by fair-share shedding", ErrOverloaded))
		c.shedFairShare.Add(1)
	}
	wtr := &waiter{class: class, tenant: tenant, weight: w, ready: make(chan struct{})}
	c.queue = append(c.queue, wtr)
	c.mu.Unlock()

	timer := time.NewTimer(c.cfg.QueueDeadline)
	defer timer.Stop()
	select {
	case <-wtr.ready:
		// Terminal state was written under mu before the close.
		if wtr.state == stateShed {
			c.shedHist.Record(time.Since(start))
			return nil, wtr.err
		}
		c.admittedAfterWait.Add(1)
		return c.releaseFunc(tenant, w), nil
	case <-timer.C:
		c.mu.Lock()
		if wtr.state == stateQueued {
			c.removeWaiterLocked(wtr)
			if ts := c.tenants[tenant]; ts != nil {
				ts.shed++
			}
			c.mu.Unlock()
			c.shedDeadline.Add(1)
			c.shedHist.Record(time.Since(start))
			return nil, fmt.Errorf("%w: queue deadline (%s) expired", ErrOverloaded, c.cfg.QueueDeadline)
		}
		// The grant (or a fair-share shed) raced the deadline; honor it.
		state, err := wtr.state, wtr.err
		c.mu.Unlock()
		if state == stateShed {
			c.shedHist.Record(time.Since(start))
			return nil, err
		}
		c.admittedAfterWait.Add(1)
		return c.releaseFunc(tenant, w), nil
	}
}

// releaseFunc builds the idempotence-guarded release closure for one
// admitted request.
func (c *Controller) releaseFunc(tenant string, w int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.inflight -= w
			if ts := c.tenants[tenant]; ts != nil {
				ts.inflight -= w
			}
			c.grantLocked()
			c.mu.Unlock()
		})
	}
}

// grantLocked admits queued waiters in FIFO order while the budget has
// room. Grants are channel closes — nothing here blocks under mu.
func (c *Controller) grantLocked() {
	for len(c.queue) > 0 {
		w := c.queue[0]
		if c.inflight+w.weight > c.cfg.Budget {
			return
		}
		c.queue = c.queue[1:]
		c.inflight += w.weight
		if ts := c.tenants[w.tenant]; ts != nil {
			ts.inflight += w.weight
			ts.admitted++
		}
		c.admitted.Add(1)
		w.state = stateAdmitted
		close(w.ready)
	}
}

// removeWaiterLocked drops a waiter from the queue (deadline expiry).
func (c *Controller) removeWaiterLocked(w *waiter) {
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			w.state = stateShed
			return
		}
	}
}

// shedWaiterLocked sheds queue[i] with the given error.
func (c *Controller) shedWaiterLocked(i int, err error) {
	w := c.queue[i]
	c.queue = append(c.queue[:i], c.queue[i+1:]...)
	if ts := c.tenants[w.tenant]; ts != nil {
		ts.shed++
	}
	w.state = stateShed
	w.err = err
	close(w.ready)
}

// fairShareVictimLocked picks the newest queued waiter of the tenant with
// the largest consumption (in-flight plus queued weight), provided that
// tenant consumes strictly more than the arriving request's tenant. It
// returns -1 when no such waiter exists — then the newcomer is the one to
// shed. With no tenant tags in play every share is equal and the answer
// is always -1 (plain FIFO queue-full shedding).
func (c *Controller) fairShareVictimLocked(arriving string) int {
	shares := make(map[string]int64, len(c.tenants)+1)
	for name, ts := range c.tenants {
		shares[name] = ts.inflight
	}
	for _, w := range c.queue {
		shares[w.tenant] += w.weight
	}
	victim, victimShare := -1, shares[arriving]
	for i := len(c.queue) - 1; i >= 0; i-- {
		w := c.queue[i]
		if w.tenant == arriving {
			continue
		}
		if s := shares[w.tenant]; s > victimShare {
			victim, victimShare = i, s
		}
	}
	return victim
}

// tenantLocked returns the tenant's state, creating it on first use. The
// empty tenant is untracked (nil): untagged traffic is exempt from the
// per-tenant limits and absent from the per-tenant stats.
func (c *Controller) tenantLocked(tenant string) *tenantState {
	if tenant == "" {
		return nil
	}
	ts := c.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		c.tenants[tenant] = ts
	}
	return ts
}

// tenantTokenLocked runs the tenant's rate-limit token bucket, reporting
// whether this request may proceed. Rate 0 disables the limit.
func (c *Controller) tenantTokenLocked(ts *tenantState, now time.Time) bool {
	if c.cfg.TenantRate <= 0 {
		return true
	}
	if ts.last.IsZero() {
		ts.tokens = c.cfg.TenantBurst
	} else {
		ts.tokens += now.Sub(ts.last).Seconds() * c.cfg.TenantRate
		if ts.tokens > c.cfg.TenantBurst {
			ts.tokens = c.cfg.TenantBurst
		}
	}
	ts.last = now
	if ts.tokens < 1 {
		return false
	}
	ts.tokens--
	return true
}

// Close sheds every queued waiter with ErrClosed and fails all future
// Acquires. Releases of already-admitted requests remain valid.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	queue := c.queue
	c.queue = nil
	for _, w := range queue {
		w.state = stateShed
		w.err = ErrClosed
		close(w.ready)
	}
	c.mu.Unlock()
}

// TenantSnapshot is one tenant's admission accounting.
type TenantSnapshot struct {
	InFlight    int64 `json:"in_flight"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
	RateLimited int64 `json:"rate_limited"`
}

// Snapshot is a point-in-time view of the controller, served on /stats
// and /metrics.
type Snapshot struct {
	Budget            int64                     `json:"budget"`
	InFlight          int64                     `json:"in_flight"`
	Queued            int                       `json:"queued"`
	Admitted          int64                     `json:"admitted"`
	AdmittedAfterWait int64                     `json:"admitted_after_wait"`
	ShedQueueFull     int64                     `json:"shed_queue_full"`
	ShedDeadline      int64                     `json:"shed_deadline"`
	ShedFairShare     int64                     `json:"shed_fair_share"`
	ShedRateLimited   int64                     `json:"shed_rate_limited"`
	Tenants           map[string]TenantSnapshot `json:"tenants,omitempty"`
}

// Shed is the total sheds across every cause.
func (s Snapshot) Shed() int64 {
	return s.ShedQueueFull + s.ShedDeadline + s.ShedFairShare + s.ShedRateLimited
}

// Snapshot captures the controller's current state.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		Admitted:          c.admitted.Load(),
		AdmittedAfterWait: c.admittedAfterWait.Load(),
		ShedQueueFull:     c.shedQueueFull.Load(),
		ShedDeadline:      c.shedDeadline.Load(),
		ShedFairShare:     c.shedFairShare.Load(),
		ShedRateLimited:   c.shedRateLimited.Load(),
	}
	c.mu.Lock()
	s.Budget = c.cfg.Budget
	s.InFlight = c.inflight
	s.Queued = len(c.queue)
	if len(c.tenants) > 0 {
		s.Tenants = make(map[string]TenantSnapshot, len(c.tenants))
		for name, ts := range c.tenants {
			s.Tenants[name] = TenantSnapshot{
				InFlight:    ts.inflight,
				Admitted:    ts.admitted,
				Shed:        ts.shed,
				RateLimited: ts.rateLimited,
			}
		}
	}
	c.mu.Unlock()
	return s
}

// ShedHist snapshots the shed fail-fast latency histogram.
func (c *Controller) ShedHist() obs.HistSnapshot { return c.shedHist.Snapshot() }
