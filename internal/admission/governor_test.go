package admission

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBucketWaitBoundedByRate(t *testing.T) {
	b := NewBucket(100, 1) // 10ms per token after the burst
	b.Wait()               // burst token, immediate
	start := time.Now()
	b.Wait()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("token wait %v, want ~10ms", d)
	}
}

func TestBucketCloseOpensGate(t *testing.T) {
	b := NewBucket(0.001, 1) // ~17 minutes per token
	b.Wait()                 // burst token
	done := make(chan struct{})
	go func() {
		b.Wait() // would block for minutes
		close(done)
	}()
	time.Sleep(time.Millisecond)
	b.Close()
	b.Close() // idempotent
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not return after Close")
	}
	// Future waits are free too.
	start := time.Now()
	b.Wait()
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("post-close Wait took %v", d)
	}
}

func TestBucketSetRateClamps(t *testing.T) {
	b := NewBucket(10, 1)
	b.SetRate(-5)
	if r := b.Rate(); r != 1 {
		t.Fatalf("rate after SetRate(-5) = %v, want clamp to 1", r)
	}
	b.SetRate(42)
	if r := b.Rate(); r != 42 {
		t.Fatalf("rate = %v, want 42", r)
	}
}

// slowRecord fills an op histogram with latencies relative to a target.
func record(reg *obs.Registry, op obs.Op, d time.Duration, n int) {
	h := reg.OpHist(op)
	for i := 0; i < n; i++ {
		h.Record(d)
	}
}

func TestGovernorThrottlesOverTarget(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGovernor(GovernorConfig{
		Target:  time.Millisecond,
		MinRate: 4,
		MaxRate: 64,
	}, reg)
	if r := g.bucket.Rate(); r != 64 {
		t.Fatalf("initial rate = %v, want MaxRate 64", r)
	}
	// Drive ticks directly: p99 far over target halves the rate until the
	// floor — never below it.
	for i := 0; i < 10; i++ {
		record(reg, obs.OpGet, 50*time.Millisecond, 100)
		g.tick()
	}
	snap := g.Snapshot()
	if snap.Rate != 4 {
		t.Fatalf("rate after sustained overload = %v, want floor 4", snap.Rate)
	}
	if !snap.Throttling || snap.ThrottleSteps == 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap.LastP99Micros < 1000 {
		t.Fatalf("LastP99Micros = %d, want ≥ target", snap.LastP99Micros)
	}
	// Fast foreground latency recovers the rate back to the ceiling.
	for i := 0; i < 32; i++ {
		record(reg, obs.OpGet, 10*time.Microsecond, 100)
		g.tick()
	}
	snap = g.Snapshot()
	if snap.Rate != 64 {
		t.Fatalf("rate after recovery = %v, want MaxRate 64", snap.Rate)
	}
	if snap.Throttling {
		t.Fatalf("still throttling at ceiling: %+v", snap)
	}
}

func TestGovernorIdleRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGovernor(GovernorConfig{Target: time.Millisecond, MinRate: 2, MaxRate: 16}, reg)
	g.bucket.SetRate(2)
	for i := 0; i < 16; i++ {
		g.tick() // no samples at all
	}
	if r := g.Snapshot().Rate; r != 16 {
		t.Fatalf("idle rate = %v, want recovery to 16", r)
	}
}

func TestGovernorStartStop(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGovernor(GovernorConfig{Target: time.Millisecond, Interval: time.Millisecond}, reg)
	g.Start()
	g.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	g.Stop()
	g.Stop() // idempotent
	// Stopped governor's gate is open.
	start := time.Now()
	gate := g.Gate()
	for i := 0; i < 100; i++ {
		gate()
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("gate still throttling after Stop: 100 waits took %v", d)
	}
	if g.LastError() != "" {
		t.Fatalf("clean stop left LastError = %q", g.LastError())
	}
}

func TestGovernorPanicStickyErrorOpensGate(t *testing.T) {
	reg := obs.NewRegistry()
	g := NewGovernor(GovernorConfig{Target: time.Millisecond, Interval: time.Millisecond}, reg)
	g.reg = nil // first tick will panic (nil registry deref)
	go g.loop()
	select {
	case <-g.done:
	case <-time.After(5 * time.Second):
		t.Fatal("panicking loop never exited")
	}
	if !strings.Contains(g.LastError(), "governor panic") {
		t.Fatalf("LastError = %q, want sticky panic record", g.LastError())
	}
	if s := g.Snapshot().LastError; !strings.Contains(s, "governor panic") {
		t.Fatalf("snapshot LastError = %q", s)
	}
	// The crashed governor must not keep throttling: gate is open.
	start := time.Now()
	gate := g.Gate()
	for i := 0; i < 100; i++ {
		gate()
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("gate closed after governor death: %v", d)
	}
}
