// Package admission implements the server's overload-protection layer:
// weighted admission control with load shedding, per-tenant QoS, and the
// load-coupled maintenance governor (ROADMAP item 3).
//
// # Admission control
//
// A Controller holds a global weighted in-flight budget. Each request
// class (read, write, batch, query, scan) carries a weight approximating
// its engine cost; a request is admitted when the sum of admitted weights
// fits the budget. When it does not, the request joins a bounded FIFO
// queue with a queue deadline. Shedding is deliberate and fast, never
// implicit and slow:
//
//   - queue full: the request is shed immediately (ErrOverloaded), unless
//     a queued waiter from a tenant holding more than its fair share can
//     be shed in its place (fair-share shedding);
//   - queue deadline expired: the waiter sheds itself (ErrOverloaded);
//   - tenant over its rate limit: rejected up front (ErrRateLimited),
//     distinguishable on the wire (CodeRetryLater vs CodeOverloaded) so
//     clients back off differently.
//
// A shed request never touches the engine: the cost of saying "no" is one
// mutex acquisition and an error frame, which is what keeps goodput near
// the capacity ceiling when offered load is a multiple of it.
//
// # Invariants
//
//  1. The in-flight weight never exceeds the budget (a single class
//     weight larger than the whole budget is clamped to it, so oversized
//     requests serialize instead of deadlocking).
//  2. Admission is FIFO among queued waiters: a waiter is only granted
//     when everything queued before it has been granted or shed.
//  3. Every Acquire resolves: admitted, shed by deadline, shed by
//     fair-share eviction, or failed by Close. Nothing waits forever —
//     the queue deadline bounds the wait, and Close sheds the queue.
//  4. No blocking operation runs while Controller.mu is held (enforced
//     by the lockio analyzer): waiters block on their own channel outside
//     the lock, and grants are channel closes, which do not block.
//
// # The maintenance governor and the no-deadlock argument
//
// The Governor couples foreground latency to background maintenance: it
// samples the obs Registry's get/upsert interval p99 each tick and steers
// a token Bucket that gates merge-job dispatch in the maintenance pool
// (AIMD: halve the merge rate when p99 is over target, multiplicatively
// recover when comfortably under). Flush jobs are never gated — memtable
// freezes must always drain, or ingest stalls forever.
//
// Throttled maintenance and write backpressure are natural deadlock
// partners: writers stall on the frozen-memtable/unmerged-component
// ceilings until maintenance catches up, so maintenance paused
// indefinitely would park writers indefinitely. The design makes that
// impossible by construction:
//
//   - The bucket's refill rate has a hard floor (GovernorConfig.MinRate,
//     never zero or below): a gated merge job waits at most ~1/MinRate
//     seconds for a token. Throttling delays merges, it never pauses
//     them, so every backpressure stall clears in bounded time.
//   - Flush jobs bypass the gate entirely (maint.JobFlush), and the pool
//     prefers a queued flush over a queued merge when a gate is
//     installed, so the frozen-memtable ceiling — the tighter of the two
//     — is never behind a throttled dispatch.
//   - Closing the bucket (governor stop, server shutdown, a governor
//     panic) opens the gate permanently: Wait returns immediately, so a
//     draining store is never slowed by a stale throttle.
//
// A governor that dies must not die silently: its loop runs under
// recover, and a panic parks the sticky LastError (surfaced on /stats as
// GovernorLastError) and opens the gate. Stale throttle state cannot
// outlive its controller.
package admission
