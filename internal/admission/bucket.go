package admission

import (
	"sync"
	"time"
)

// Bucket is a token bucket gating maintenance-job dispatch. Wait blocks
// until a token accrues (at the current rate) or the bucket closes; a
// closed bucket admits everything immediately, so a stopped governor can
// never slow a draining store. All methods are safe for concurrent use.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second (> 0)
	burst  float64
	tokens float64
	last   time.Time

	closed   chan struct{}
	closeOne sync.Once
}

// NewBucket builds a bucket starting full at the given rate and burst.
func NewBucket(rate, burst float64) *Bucket {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, closed: make(chan struct{})}
}

// SetRate changes the refill rate (clamped to a positive value).
func (b *Bucket) SetRate(rate float64) {
	if rate <= 0 {
		rate = 1
	}
	b.mu.Lock()
	b.refillLocked(time.Now())
	b.rate = rate
	b.mu.Unlock()
}

// Rate reports the current refill rate.
func (b *Bucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// refillLocked accrues tokens for the time elapsed since the last refill.
func (b *Bucket) refillLocked(now time.Time) {
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Wait consumes one token, sleeping until one accrues. It returns
// immediately once the bucket is closed. The wait is re-checked each
// iteration, so a concurrent SetRate shortens (or lengthens) it.
func (b *Bucket) Wait() {
	for {
		select {
		case <-b.closed:
			return
		default:
		}
		b.mu.Lock()
		now := time.Now()
		b.refillLocked(now)
		if b.tokens >= 1 {
			b.tokens--
			b.mu.Unlock()
			return
		}
		need := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
		b.mu.Unlock()
		if need < 50*time.Microsecond {
			need = 50 * time.Microsecond
		}
		timer := time.NewTimer(need)
		select {
		case <-b.closed:
			timer.Stop()
			return
		case <-timer.C:
		}
	}
}

// Close opens the gate permanently: all current and future Waits return
// immediately. Idempotent.
func (b *Bucket) Close() {
	b.closeOne.Do(func() { close(b.closed) })
}
