package admission

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitQueued polls until the controller reports n queued waiters.
func waitQueued(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Snapshot().Queued == n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("queue never reached %d waiters (at %d)", n, c.Snapshot().Queued)
}

func TestAcquireFastPath(t *testing.T) {
	c := New(Config{Budget: 4})
	rel, err := c.Acquire(ClassRead, "")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	s := c.Snapshot()
	if s.InFlight != 1 || s.Admitted != 1 {
		t.Fatalf("snapshot after admit: %+v", s)
	}
	rel()
	rel() // idempotent
	if got := c.Snapshot().InFlight; got != 0 {
		t.Fatalf("in-flight after double release = %d, want 0", got)
	}
}

func TestWeightClampedToBudget(t *testing.T) {
	c := New(Config{Budget: 2})
	if w := c.Weight(ClassScan); w != 2 {
		t.Fatalf("scan weight = %d, want clamped to budget 2", w)
	}
	rel, err := c.Acquire(ClassScan, "")
	if err != nil {
		t.Fatalf("oversized class must still admit: %v", err)
	}
	rel()
}

func TestBudgetNeverExceeded(t *testing.T) {
	const budget = 5
	c := New(Config{Budget: budget, QueueDeadline: 50 * time.Millisecond})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	classes := []Class{ClassRead, ClassWrite, ClassBatch, ClassQuery, ClassScan}
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				cl := classes[(i+j)%len(classes)]
				rel, err := c.Acquire(cl, "")
				if err != nil {
					continue
				}
				w := c.Weight(cl)
				v := cur.Add(w)
				for {
					p := peak.Load()
					if v <= p || peak.CompareAndSwap(p, v) {
						break
					}
				}
				cur.Add(-w)
				rel()
			}
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > budget {
		t.Fatalf("weighted in-flight peaked at %d, budget %d", p, budget)
	}
	if s := c.Snapshot(); s.InFlight != 0 || s.Queued != 0 {
		t.Fatalf("leaked state: %+v", s)
	}
}

func TestQueueFIFO(t *testing.T) {
	c := New(Config{Budget: 1, MaxQueue: 8, QueueDeadline: 2 * time.Second})
	rel, err := c.Acquire(ClassRead, "")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	order := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			r, err := c.Acquire(ClassRead, "")
			if err != nil {
				t.Errorf("queued acquire %d: %v", i, err)
				return
			}
			order <- i
			r()
		}()
		// Serialize the goroutine launches so queue order matches i.
		waitQueued(t, c, i+1)
	}
	rel()
	for want := 0; want < 3; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("admit order: got %d, want %d", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("waiter %d never admitted", want)
		}
	}
}

func TestQueueDeadlineShed(t *testing.T) {
	c := New(Config{Budget: 1, QueueDeadline: 5 * time.Millisecond})
	rel, err := c.Acquire(ClassRead, "")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer rel()
	start := time.Now()
	_, err = c.Acquire(ClassRead, "")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if elapsed < 5*time.Millisecond {
		t.Fatalf("shed before deadline: %v", elapsed)
	}
	if elapsed > time.Second {
		t.Fatalf("shed took %v, not a fast fail", elapsed)
	}
	s := c.Snapshot()
	if s.ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d, want 1 (%+v)", s.ShedDeadline, s)
	}
	if c.ShedHist().Count != 1 {
		t.Fatalf("shed hist count = %d, want 1", c.ShedHist().Count)
	}
}

func TestQueueDisabledShedsImmediately(t *testing.T) {
	c := New(Config{Budget: 1, MaxQueue: -1})
	rel, err := c.Acquire(ClassRead, "")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer rel()
	start := time.Now()
	_, err = c.Acquire(ClassRead, "")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("no-queue shed took %v, want immediate", d)
	}
	if s := c.Snapshot(); s.ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d, want 1", s.ShedQueueFull)
	}
}

func TestFairShareShedding(t *testing.T) {
	c := New(Config{Budget: 1, MaxQueue: 2, QueueDeadline: 2 * time.Second})
	relA, err := c.Acquire(ClassRead, "A")
	if err != nil {
		t.Fatalf("Acquire A: %v", err)
	}
	type result struct {
		i   int
		err error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			r, err := c.Acquire(ClassRead, "A")
			if err == nil {
				defer r()
			}
			results <- result{i, err}
		}()
		waitQueued(t, c, i+1)
	}
	// Tenant B arrives with the queue full. A consumes strictly more
	// (in-flight 1 + queued 2) than B (0), so B displaces A's newest
	// queued waiter instead of being shed itself.
	bDone := make(chan error, 1)
	go func() {
		r, err := c.Acquire(ClassRead, "B")
		if err == nil {
			defer r()
		}
		bDone <- err
	}()

	// A's newest waiter (i=1) is shed with ErrOverloaded.
	select {
	case res := <-results:
		if res.i != 1 {
			t.Fatalf("victim was waiter %d, want the newest (1)", res.i)
		}
		if !errors.Is(res.err, ErrOverloaded) {
			t.Fatalf("victim err = %v, want ErrOverloaded", res.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no fair-share victim shed")
	}
	relA()
	// FIFO: A's older waiter admits first, then B.
	select {
	case res := <-results:
		if res.i != 0 || res.err != nil {
			t.Fatalf("surviving waiter: %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("surviving A waiter never resolved")
	}
	select {
	case err := <-bDone:
		if err != nil {
			t.Fatalf("tenant B should admit after displacement: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tenant B never resolved")
	}
	s := c.Snapshot()
	if s.ShedFairShare != 1 {
		t.Fatalf("ShedFairShare = %d, want 1 (%+v)", s.ShedFairShare, s)
	}
	if s.Tenants["A"].Shed != 1 {
		t.Fatalf("tenant A shed = %d, want 1", s.Tenants["A"].Shed)
	}
}

func TestTenantRateLimit(t *testing.T) {
	c := New(Config{Budget: 8, TenantRate: 1, TenantBurst: 1})
	rel, err := c.Acquire(ClassRead, "tenant-1")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	rel()
	if _, err := c.Acquire(ClassRead, "tenant-1"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second acquire err = %v, want ErrRateLimited", err)
	}
	// Untagged traffic is exempt.
	for i := 0; i < 5; i++ {
		r, err := c.Acquire(ClassRead, "")
		if err != nil {
			t.Fatalf("untagged acquire %d: %v", i, err)
		}
		r()
	}
	s := c.Snapshot()
	if s.ShedRateLimited != 1 || s.Tenants["tenant-1"].RateLimited != 1 {
		t.Fatalf("rate-limit accounting: %+v", s)
	}
}

func TestCloseShedsQueueAndFailsAcquires(t *testing.T) {
	c := New(Config{Budget: 1, QueueDeadline: 2 * time.Second})
	rel, err := c.Acquire(ClassRead, "")
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ClassRead, "")
		errCh <- err
	}()
	waitQueued(t, c, 1)
	c.Close()
	c.Close() // idempotent
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("queued waiter err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter not shed by Close")
	}
	if _, err := c.Acquire(ClassRead, ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close acquire err = %v, want ErrClosed", err)
	}
	rel() // release after close must not panic
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		ClassRead: "read", ClassWrite: "write", ClassBatch: "batch",
		ClassQuery: "query", ClassScan: "scan",
	}
	for c, s := range want {
		if c.String() != s {
			t.Fatalf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if Class(200).String() != "class(200)" {
		t.Fatalf("unknown class string = %q", Class(200).String())
	}
}

func TestSnapshotShedTotal(t *testing.T) {
	s := Snapshot{ShedQueueFull: 1, ShedDeadline: 2, ShedFairShare: 3, ShedRateLimited: 4}
	if got := s.Shed(); got != 10 {
		t.Fatalf("Shed() = %d, want 10", got)
	}
}
