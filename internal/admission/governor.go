package admission

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Governor defaults. MinRate is the hard floor of the no-deadlock
// argument: a gated merge job waits at most ~1/MinRate seconds.
const (
	defaultGovInterval = 50 * time.Millisecond
	defaultGovMinRate  = 4
	defaultGovMaxRate  = 512
	defaultGovBurst    = 4
)

// GovernorConfig parameterizes the load-coupled maintenance governor.
type GovernorConfig struct {
	// Target is the foreground latency target: the governor throttles
	// merge dispatch while the get/upsert interval p99 exceeds it.
	// Required (> 0).
	Target time.Duration
	// Interval is the sampling period. 0 means 50ms.
	Interval time.Duration
	// MinRate is the hard floor for the merge-dispatch rate, in jobs per
	// second. Never allowed below 1; 0 means 4. This floor is what keeps
	// throttled maintenance from deadlocking write backpressure.
	MinRate float64
	// MaxRate is the ceiling for the merge-dispatch rate (the effective
	// "unthrottled" rate). 0 means 512.
	MaxRate float64
	// Burst is the token-bucket burst. 0 means 4.
	Burst float64
}

func (cfg GovernorConfig) withDefaults() GovernorConfig {
	if cfg.Interval <= 0 {
		cfg.Interval = defaultGovInterval
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = defaultGovMinRate
	}
	if cfg.MinRate < 1 {
		cfg.MinRate = 1
	}
	if cfg.MaxRate <= 0 {
		cfg.MaxRate = defaultGovMaxRate
	}
	if cfg.MaxRate < cfg.MinRate {
		cfg.MaxRate = cfg.MinRate
	}
	if cfg.Burst < 1 {
		cfg.Burst = defaultGovBurst
	}
	return cfg
}

// Governor samples foreground latency from an obs.Registry and steers a
// token Bucket gating merge-job dispatch (AIMD-style: halve the rate when
// the interval p99 is over target, multiplicatively recover when
// comfortably under). Its loop runs under recover: a panic parks a sticky
// LastError and opens the gate, so stale throttle state cannot outlive
// its controller.
type Governor struct {
	cfg    GovernorConfig
	reg    *obs.Registry
	bucket *Bucket

	mu            sync.Mutex
	lastGet       obs.HistSnapshot
	lastUpsert    obs.HistSnapshot
	lastP99       time.Duration
	throttleSteps int64
	recoverSteps  int64
	lastErr       string
	started       bool

	stop chan struct{}
	done chan struct{}
}

// NewGovernor builds a governor over reg with cfg (defaults applied).
// The gate starts fully open (rate = MaxRate).
func NewGovernor(cfg GovernorConfig, reg *obs.Registry) *Governor {
	cfg = cfg.withDefaults()
	return &Governor{
		cfg:    cfg,
		reg:    reg,
		bucket: NewBucket(cfg.MaxRate, cfg.Burst),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Gate returns the dispatch gate for merge jobs: a function that blocks
// until the governor's token bucket grants a token. Safe to call before
// Start and after Stop (a closed bucket admits immediately).
func (g *Governor) Gate() func() { return g.bucket.Wait }

// Start launches the sampling loop. Idempotent-hostile by design: call
// once.
func (g *Governor) Start() {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return
	}
	g.started = true
	// Baseline the interval deltas so the first tick doesn't see the
	// registry's whole history.
	g.lastGet = g.reg.OpHist(obs.OpGet).Snapshot()
	g.lastUpsert = g.reg.OpHist(obs.OpUpsert).Snapshot()
	g.mu.Unlock()
	go g.loop()
}

// Stop halts the loop and opens the gate permanently. Safe to call
// multiple times and without a prior Start.
func (g *Governor) Stop() {
	g.mu.Lock()
	started := g.started
	g.started = false
	g.mu.Unlock()
	g.bucket.Close()
	if started {
		close(g.stop)
		<-g.done
	}
}

func (g *Governor) loop() {
	defer close(g.done)
	defer func() {
		if r := recover(); r != nil {
			g.mu.Lock()
			g.lastErr = fmt.Sprintf("governor panic: %v", r)
			g.mu.Unlock()
			// A dead governor must not keep throttling: open the gate.
			g.bucket.Close()
		}
	}()
	ticker := time.NewTicker(g.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.tick()
		}
	}
}

// tick samples the foreground interval p99 and adjusts the merge rate.
func (g *Governor) tick() {
	curGet := g.reg.OpHist(obs.OpGet).Snapshot()
	curUpsert := g.reg.OpHist(obs.OpUpsert).Snapshot()

	g.mu.Lock()
	interval := curGet.Sub(g.lastGet).Add(curUpsert.Sub(g.lastUpsert))
	g.lastGet = curGet
	g.lastUpsert = curUpsert
	g.mu.Unlock()

	var p99 time.Duration
	if interval.Count > 0 {
		p99 = time.Duration(interval.Quantile(0.99))
	}

	rate := g.bucket.Rate()
	switch {
	case interval.Count > 0 && p99 > g.cfg.Target:
		// Over target: back off multiplicatively, clamped to the floor.
		rate /= 2
		if rate < g.cfg.MinRate {
			rate = g.cfg.MinRate
		}
		g.bucket.SetRate(rate)
		g.mu.Lock()
		g.throttleSteps++
	case interval.Count == 0 || p99 < g.cfg.Target*7/10:
		// Idle or comfortably under target: recover toward the ceiling.
		rate *= 1.25
		if rate > g.cfg.MaxRate {
			rate = g.cfg.MaxRate
		}
		g.bucket.SetRate(rate)
		g.mu.Lock()
		g.recoverSteps++
	default:
		// In the dead band: hold.
		g.mu.Lock()
	}
	g.lastP99 = p99
	g.mu.Unlock()
}

// LastError returns the sticky error from a governor panic, or "".
func (g *Governor) LastError() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lastErr
}

// GovernorSnapshot is the governor state surfaced on /stats and
// /debug/maintenance.
type GovernorSnapshot struct {
	TargetMicros  int64   `json:"target_us"`
	Rate          float64 `json:"merge_rate"`
	MinRate       float64 `json:"min_rate"`
	MaxRate       float64 `json:"max_rate"`
	Throttling    bool    `json:"throttling"`
	LastP99Micros int64   `json:"last_p99_us"`
	ThrottleSteps int64   `json:"throttle_steps"`
	RecoverSteps  int64   `json:"recover_steps"`
	LastError     string  `json:"last_error,omitempty"`
}

// Snapshot captures the governor's current state.
func (g *Governor) Snapshot() GovernorSnapshot {
	rate := g.bucket.Rate()
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorSnapshot{
		TargetMicros:  g.cfg.Target.Microseconds(),
		Rate:          rate,
		MinRate:       g.cfg.MinRate,
		MaxRate:       g.cfg.MaxRate,
		Throttling:    rate < g.cfg.MaxRate,
		LastP99Micros: g.lastP99.Microseconds(),
		ThrottleSteps: g.throttleSteps,
		RecoverSteps:  g.recoverSteps,
		LastError:     g.lastErr,
	}
}
