package lsm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/kv"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// TestReadVisibilityDuringFlush hammers point reads while a flush moves the
// memory component to disk: every key must stay visible throughout, because
// Flush keeps the frozen memtable readable (Tree.flushing) until its disk
// component is installed. Before that fix a reader could observe the window
// where entries were in neither the memtable nor the component list.
func TestReadVisibilityDuringFlush(t *testing.T) {
	for round := 0; round < 3; round++ {
		env := metrics.NopEnv()
		store := storage.NewStore(storage.NewDisk(storage.ScaledHDD(1<<10), env), 1<<20, env)
		tr := New(Options{Name: "t", Store: store, Seed: int64(round)})
		// Large enough that the build outlasts a scheduler preemption slice
		// even on one CPU, so the reader goroutine observes the window.
		const n = 120_000
		for i := 0; i < n; i++ {
			tr.Put(kv.Entry{Key: []byte(fmt.Sprintf("key-%05d", i)), Value: []byte("v"), TS: int64(i + 1)})
		}

		stop := make(chan struct{})
		var wg sync.WaitGroup
		var mu sync.Mutex
		var missing []string
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < n; i += 997 {
					key := []byte(fmt.Sprintf("key-%05d", i))
					_, found, err := tr.Get(key)
					if err != nil {
						mu.Lock()
						missing = append(missing, fmt.Sprintf("%s: %v", key, err))
						mu.Unlock()
						return
					}
					if !found {
						mu.Lock()
						missing = append(missing, string(key))
						mu.Unlock()
						return
					}
				}
			}
		}()
		if _, err := tr.Flush(1); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		if len(missing) > 0 {
			t.Fatalf("round %d: keys invisible during flush: %v", round, missing[:1])
		}
		// Sanity: view is clean after the flush.
		mem, flushing, comps := tr.ReadView()
		if len(flushing) != 0 {
			t.Fatal("flushing table still set after flush")
		}
		if mem.Len() != 0 || len(comps) != 1 {
			t.Fatalf("unexpected post-flush view: mem=%d comps=%d", mem.Len(), len(comps))
		}
	}
}
