package lsm

import (
	"fmt"
	"testing"

	"repro/internal/bloom"
	"repro/internal/kv"
)

func sentinelKey(i int) []byte { return []byte(fmt.Sprintf("sentinel-%04d", i)) }

// TestRestoreUsesPersistedBloomV2 proves the reopen path decodes the
// manifest's persisted filter instead of rebuilding it by scan: the
// restored image carries a sentinel filter built over a disjoint key set,
// and the filter that comes back must recognize the sentinels. A rebuilt
// filter would instead admit every one of the component's own keys, so
// the test also requires that at least some of those keys miss.
func TestRestoreUsesPersistedBloomV2(t *testing.T) {
	const n = 512
	tr, _ := newTestTree(t, 1024, func(o *Options) { o.BloomV2 = true })
	for i := 0; i < n; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: val(i), TS: int64(i)})
	}
	comp, err := tr.Flush(1)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := bloom.NewV2FPR(n, 0.01)
	for i := 0; i < n; i++ {
		sentinel.Add(sentinelKey(i))
	}
	image := RestoredComponent{
		ID:       comp.ID,
		EpochMin: comp.EpochMin,
		EpochMax: comp.EpochMax,
		File:     comp.BTree.FileID(),
		Bloom:    sentinel.Marshal(),
	}

	comps, err := tr.Restore([]RestoredComponent{image})
	if err != nil {
		t.Fatal(err)
	}
	got := comps[0].Bloom
	for i := 0; i < n; i++ {
		if ok, _ := got.MayContain(sentinelKey(i)); !ok {
			t.Fatalf("restored filter lost sentinel %d: the persisted encoding was not used", i)
		}
	}
	misses := 0
	for i := 0; i < n; i++ {
		if ok, _ := got.MayContain(key(i)); !ok {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("restored filter admits every component key; it was rebuilt by scan, not decoded")
	}
}

// TestRestoreBloomFallbacks: a missing or corrupt persisted filter is not
// an error — Restore rebuilds the filter from the component's keys, and
// the rebuilt filter must admit all of them.
func TestRestoreBloomFallbacks(t *testing.T) {
	const n = 512
	tr, _ := newTestTree(t, 1024, func(o *Options) { o.BloomV2 = true })
	for i := 0; i < n; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: val(i), TS: int64(i)})
	}
	comp, err := tr.Flush(1)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), comp.Bloom.(*bloom.V2).Marshal()...)
	corrupt[0] ^= 0xFF // breaks the magic; UnmarshalV2 rejects it
	for name, enc := range map[string][]byte{"missing": nil, "corrupt": corrupt} {
		image := RestoredComponent{
			ID:       comp.ID,
			EpochMin: comp.EpochMin,
			EpochMax: comp.EpochMax,
			File:     comp.BTree.FileID(),
			Bloom:    enc,
		}
		comps, err := tr.Restore([]RestoredComponent{image})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := comps[0].Bloom
		if _, ok := got.(*bloom.V2); !ok {
			t.Fatalf("%s: rebuilt filter is %T, want *bloom.V2", name, got)
		}
		for i := 0; i < n; i++ {
			if ok, _ := got.MayContain(key(i)); !ok {
				t.Fatalf("%s: rebuilt filter lost component key %d", name, i)
			}
		}
	}
}
