package lsm

import (
	"fmt"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/kv"
)

func TestIDOverlaps(t *testing.T) {
	cases := []struct {
		a, b ID
		want bool
	}{
		{ID{1, 15}, ID{16, 18}, false},
		{ID{1, 15}, ID{1, 10}, true},
		{ID{1, 15}, ID{15, 20}, true},
		{ID{5, 5}, ID{5, 5}, true},
		{ID{1, 4}, ID{5, 9}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("overlaps must be symmetric: %v %v", c.a, c.b)
		}
	}
}

func TestNoReconcileEmitsAllVersionsNewestFirst(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	tr.Put(kv.Entry{Key: key(1), Value: []byte("v1"), TS: 1})
	tr.Put(kv.Entry{Key: key(2), Value: []byte("w1"), TS: 2})
	tr.Flush(1)
	tr.Put(kv.Entry{Key: key(1), Value: []byte("v2"), TS: 3})
	tr.Flush(2)

	it, err := tr.NewMergedIterator(IterOptions{
		Components:  tr.Components(),
		NoReconcile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		item, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, fmt.Sprintf("%d:%s", kv.DecodeUint64(item.Entry.Key), item.Entry.Value))
	}
	want := "[1:v2 1:v1 2:w1]"
	if fmt.Sprint(got) != want {
		t.Fatalf("NoReconcile order = %v, want %v", got, want)
	}
}

func TestIteratorSnapshotsOverrideLiveBitmaps(t *testing.T) {
	tr, _ := newTestTree(t, 1024, func(o *Options) { o.MutableBitmaps = true })
	for i := 0; i < 10; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: val(i), TS: int64(i)})
	}
	tr.Flush(1)
	comp := tr.Components()[0]
	// Snapshot taken with entry 3 already deleted.
	_, ord3, _, _ := comp.BTree.Get(key(3))
	comp.Valid.Set(ord3)
	snap := comp.Valid.Snapshot()
	// Entry 5 deleted after the snapshot: the snapshot scan must still
	// see it (Fig 11's build phase isolation).
	_, ord5, _, _ := comp.BTree.Get(key(5))
	comp.Valid.Set(ord5)

	it, err := tr.NewMergedIterator(IterOptions{
		Components:    tr.Components(),
		SkipInvisible: true,
		Snapshots:     map[*Component]*bitmap.Immutable{comp: snap},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for {
		item, ok, _ := it.Next()
		if !ok {
			break
		}
		seen[kv.DecodeUint64(item.Entry.Key)] = true
	}
	if seen[3] {
		t.Error("snapshot-deleted entry visible")
	}
	if !seen[5] {
		t.Error("post-snapshot delete leaked into the snapshot scan")
	}
	if len(seen) != 9 {
		t.Errorf("saw %d entries, want 9", len(seen))
	}
}

func TestMergeBadRange(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	tr.Put(kv.Entry{Key: key(1), Value: val(1), TS: 1})
	tr.Flush(1)
	for _, r := range [][2]int{{0, 0}, {-1, 1}, {0, 2}, {1, 1}} {
		if _, err := tr.Merge(MergeSpec{Lo: r[0], Hi: r[1]}); err == nil {
			t.Errorf("range %v accepted", r)
		}
	}
}

func TestCrackedEntriesInvisibleAndRemovedAtMerge(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	for i := 0; i < 20; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: val(i), TS: int64(i)})
	}
	tr.Flush(1)
	tr.Put(kv.Entry{Key: key(100), Value: val(100), TS: 100})
	tr.Flush(2)
	comp := tr.Components()[0]
	_, ord, _, _ := comp.BTree.Get(key(7))
	comp.Crack(ord)
	if comp.CrackedCount() != 1 {
		t.Fatalf("CrackedCount = %d", comp.CrackedCount())
	}
	if _, found, _ := tr.Get(key(7)); found {
		t.Fatal("cracked entry visible via Get")
	}
	res, err := tr.Merge(MergeSpec{Lo: 0, Hi: 2, DropAnti: true, SkipInvisible: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.Install(res)
	if got := tr.Components()[0].NumEntries(); got != 20 { // 21 - cracked
		t.Fatalf("entries after merge = %d, want 20", got)
	}
}

func TestRepairedTSInheritedAtFlushAndMerge(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	tr.Put(kv.Entry{Key: key(1), Value: val(1), TS: 5})
	tr.Put(kv.Entry{Key: key(2), Value: val(2), TS: 9})
	c1, _ := tr.Flush(1)
	if c1.RepairedTS != 9 {
		t.Fatalf("flush repairedTS = %d, want its own maxTS 9", c1.RepairedTS)
	}
	tr.Put(kv.Entry{Key: key(3), Value: val(3), TS: 20})
	c2, _ := tr.Flush(2)
	if c2.RepairedTS != 20 {
		t.Fatalf("second flush repairedTS = %d", c2.RepairedTS)
	}
	res, err := tr.Merge(MergeSpec{Lo: 0, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Component.RepairedTS != 9 { // min of inputs
		t.Fatalf("merged repairedTS = %d, want 9", res.Component.RepairedTS)
	}
}

func TestMergedFilterWidensForRetainedAnti(t *testing.T) {
	extract := func(e kv.Entry) (int64, bool) {
		if len(e.Value) < 8 {
			return 0, false
		}
		return int64(kv.DecodeUint64(e.Value[:8])), true
	}
	tr, _ := newTestTree(t, 1024, func(o *Options) { o.FilterExtract = extract })
	tr.Put(kv.Entry{Key: key(1), Value: kv.EncodeUint64(2000), TS: 1})
	tr.WidenMemFilter(2000)
	tr.Flush(1)
	// Delete key 1 and add key 2. Eager-style maintenance widens the
	// memory filter with the deleted record's value (Section 3.1), so the
	// flushed component's filter covers [2000, 3000].
	tr.Put(kv.Entry{Key: key(1), TS: 2, Anti: true})
	tr.WidenMemFilter(2000)
	tr.Put(kv.Entry{Key: key(2), Value: kv.EncodeUint64(3000), TS: 3})
	tr.WidenMemFilter(3000)
	tr.Flush(2)
	// Partial merge of only the newest component keeps the anti-matter:
	// the merged filter must widen to the input's bounds so queries still
	// see the delete evidence.
	res, err := tr.Merge(MergeSpec{Lo: 1, Hi: 2}) // keeps anti
	if err != nil {
		t.Fatal(err)
	}
	tr.Install(res)
	m := tr.Components()[1]
	if !m.HasFilter {
		t.Fatal("merged component lost its filter")
	}
	if m.FilterMin > 2000 {
		t.Fatalf("filter [%d,%d] must cover the anti-matter's epoch", m.FilterMin, m.FilterMax)
	}
	// A full merge drops the anti and the filter tightens to live data.
	res2, err := tr.Merge(MergeSpec{Lo: 0, Hi: 2, DropAnti: true, SkipInvisible: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.Install(res2)
	f := tr.Components()[0]
	if f.FilterMin != 3000 || f.FilterMax != 3000 {
		t.Fatalf("post-full-merge filter = [%d,%d], want [3000,3000]", f.FilterMin, f.FilterMax)
	}
}

func TestEpochsUnionAtMerge(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	for e := uint64(1); e <= 3; e++ {
		tr.Put(kv.Entry{Key: key(int(e)), Value: val(int(e)), TS: int64(e)})
		tr.Flush(e)
	}
	res, err := tr.Merge(MergeSpec{Lo: 0, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Component.EpochMin != 1 || res.Component.EpochMax != 3 {
		t.Fatalf("merged epochs = [%d,%d]", res.Component.EpochMin, res.Component.EpochMax)
	}
}
