package lsm

import (
	"errors"
	"sync"

	"repro/internal/bitmap"
	"repro/internal/bloom"
	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/memtable"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Options configures one LSM-tree index.
type Options struct {
	// Name labels the tree in errors and stats.
	Name string
	// Store is the shared storage handle (disk + buffer cache).
	Store *storage.Store
	// BloomFPR, when positive, attaches a Bloom filter with this target
	// false-positive rate to every disk component (the paper uses 1%).
	BloomFPR float64
	// BlockedBloom selects the cache-friendly blocked variant (Section 3.2).
	BlockedBloom bool
	// BloomV2 selects the runtime split-block filter (bloom.V2) instead of
	// the paper's cost-model variants. V2 filters marshal into the durable
	// manifest (RestoredComponent.Bloom), so reopen skips the
	// rebuild-by-scan the in-memory-only variants pay. Takes precedence
	// over BlockedBloom.
	BloomV2 bool
	// FilterExtract extracts the range-filter key from an entry, or reports
	// false when the entry carries none (anti-matter). Nil disables
	// recomputing filters at merge time.
	FilterExtract func(e kv.Entry) (int64, bool)
	// MutableBitmaps attaches a mutable validity bitmap to every disk
	// component (the Mutable-bitmap strategy, Section 5).
	MutableBitmaps bool
	// Seed makes memtable shapes deterministic.
	Seed int64
}

// newFilter builds the configured Bloom filter flavor sized for n keys,
// returning the filter and its insert function (nil, nil when filters are
// disabled). Every disk-component build path (memtable flush, merge, pk
// sibling build, restore rebuild) goes through this single selector.
func newFilter(opts Options, n int) (bloom.Filter, func([]byte)) {
	switch {
	case opts.BloomFPR <= 0:
		return nil, nil
	case opts.BloomV2:
		f := bloom.NewV2FPR(n, opts.BloomFPR)
		return f, f.Add
	case opts.BlockedBloom:
		f := bloom.NewBlockedFPR(n, opts.BloomFPR)
		return f, f.Add
	default:
		f := bloom.NewStandardFPR(n, opts.BloomFPR)
		return f, f.Add
	}
}

// Tree is one LSM-tree index. All methods are safe for concurrent use.
type Tree struct {
	opts Options
	env  *metrics.Env

	mu   sync.RWMutex
	mem  *memtable.Table
	disk []*Component // oldest -> newest
	gen  int64
	// flushing holds the frozen memory components, oldest to newest, while
	// flushes build their disk components, keeping their entries visible to
	// concurrent readers during the build window (writers are drained during
	// freezes, readers are not). Synchronous flushes hold at most one; the
	// background maintenance scheduler may queue several.
	flushing []*memtable.Table
	// installGen invalidates in-flight merge/flush installs across a crash:
	// ResetMem bumps it, and installs captured under an older generation are
	// abandoned with ErrStaleInstall.
	installGen uint64
}

// New creates an empty LSM-tree.
func New(opts Options) *Tree {
	t := &Tree{opts: opts, env: opts.Store.Env()}
	t.mem = memtable.New(opts.Seed)
	return t
}

// Name returns the tree's label.
func (t *Tree) Name() string { return t.opts.Name }

// Env returns the tree's metrics environment.
func (t *Tree) Env() *metrics.Env { return t.env }

// Options returns the tree's configuration.
func (t *Tree) Options() Options { return t.opts }

// Mem returns the current memory component.
func (t *Tree) Mem() *memtable.Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem
}

// Components returns a snapshot of the disk components, oldest to newest.
func (t *Tree) Components() []*Component {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Component(nil), t.disk...)
}

// ReadView atomically snapshots the tree's read sources: the live memory
// component, the memory components currently being flushed (oldest to
// newest; empty outside a flush), and the disk components oldest to newest.
// Readers that consult mem and components non-atomically can miss the
// entries of an in-flight flush — swapped out of the memtable but not yet
// installed on disk — so every concurrent read path should start from one
// ReadView.
func (t *Tree) ReadView() (mem *memtable.Table, flushing []*memtable.Table, comps []*Component) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem, append([]*memtable.Table(nil), t.flushing...), append([]*Component(nil), t.disk...)
}

// NumFrozen returns the number of frozen memory components awaiting their
// disk-component builds (the backpressure signal).
func (t *Tree) NumFrozen() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.flushing)
}

// FrozenGet searches the frozen memory components newest-first for key,
// returning the winning entry and the table holding it. It backs write
// paths (Mutable-bitmap delete search) that must observe entries swapped
// out by an in-flight asynchronous flush.
func (t *Tree) FrozenGet(key []byte) (kv.Entry, *memtable.Table, bool) {
	t.mu.RLock()
	frozen := t.flushing
	for i := len(frozen) - 1; i >= 0; i-- {
		if e, ok := frozen[i].Get(key); ok {
			t.mu.RUnlock()
			return e, frozen[i], true
		}
	}
	t.mu.RUnlock()
	return kv.Entry{}, nil, false
}

// NumDiskComponents returns the current number of disk components.
func (t *Tree) NumDiskComponents() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.disk)
}

// MemBytes returns the memory component's current footprint.
func (t *Tree) MemBytes() int { return t.Mem().Bytes() }

// DiskBytes returns the total size of all disk components.
func (t *Tree) DiskBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total int64
	for _, c := range t.disk {
		total += c.SizeBytes()
	}
	return total
}

// Put inserts an entry (possibly anti-matter) into the memory component.
func (t *Tree) Put(e kv.Entry) {
	t.env.ChargeMemtable()
	t.Mem().Put(e)
}

// WidenMemFilter widens the memory component's range filter (strategy-
// dependent; see memtable.WidenFilter).
func (t *Tree) WidenMemFilter(v int64) { t.Mem().WidenFilter(v) }

// Get returns the newest visible version of key, reconciling the memory
// component and all disk components newest-first. Anti-matter and bitmap-
// deleted entries make the key read as absent.
func (t *Tree) Get(key []byte) (kv.Entry, bool, error) {
	e, _, _, found, err := t.getInternal(key, nil)
	return e, found, err
}

// GetWithLocation additionally reports the component holding the winning
// version (nil for the memory component) and the entry's ordinal in it.
// It is used by the Mutable-bitmap strategy's delete path and by component-
// ID propagation. The onlyComponents argument, when non-nil, restricts the
// search to the given disk components (pID pruning).
func (t *Tree) GetWithLocation(key []byte, onlyComponents []*Component) (kv.Entry, *Component, int64, bool, error) {
	e, c, ord, found, err := t.getInternal(key, onlyComponents)
	return e, c, ord, found, err
}

func (t *Tree) getInternal(key []byte, only []*Component) (kv.Entry, *Component, int64, bool, error) {
	t.env.Counters.PointLookups.Add(1)
	comps := only
	if comps == nil {
		mem, flushing, viewComps := t.ReadView()
		t.env.ChargeMemtable()
		if e, ok := mem.Get(key); ok {
			if e.Anti {
				return kv.Entry{}, nil, 0, false, nil
			}
			return e, nil, 0, true, nil
		}
		for i := len(flushing) - 1; i >= 0; i-- {
			t.env.ChargeMemtable()
			if e, ok := flushing[i].Get(key); ok {
				if e.Anti {
					return kv.Entry{}, nil, 0, false, nil
				}
				return e, nil, 0, true, nil
			}
		}
		comps = viewComps
	}
	for i := len(comps) - 1; i >= 0; i-- {
		c := comps[i]
		if !c.MayContain(t.env, key) {
			continue
		}
		e, ord, found, err := c.BTree.Get(key)
		if err != nil {
			return kv.Entry{}, nil, 0, false, err
		}
		if !found {
			continue
		}
		if !c.entryVisible(ord) {
			// Deleted through a bitmap: every older version is deleted
			// too (see DESIGN.md invariants), so keep searching only to
			// honor Obsolete-bitmap skips, where older entries may win.
			if c.Valid.IsSet(ord) {
				return kv.Entry{}, nil, 0, false, nil
			}
			continue
		}
		if e.Anti {
			return kv.Entry{}, nil, 0, false, nil
		}
		return e, c, ord, true, nil
	}
	return kv.Entry{}, nil, 0, false, nil
}

// ResetMem discards the memory component and every frozen memory component
// (crash simulation: the no-steal policy guarantees disk components never
// hold uncommitted data, so losing memory state is exactly what a failure
// does). It also bumps the install generation so in-flight asynchronous
// flush builds and merges abandon their installs instead of resurrecting
// pre-crash memory state.
func (t *Tree) ResetMem() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	t.installGen++
	t.mem = memtable.New(t.opts.Seed + t.gen)
	t.flushing = nil
}

// ErrEmptyFlush reports a flush of an empty memory component.
var ErrEmptyFlush = errors.New("lsm: empty memory component")

// ErrStaleInstall reports an install abandoned because the tree's memory
// state was reset (a simulated crash) after the merge or flush build began.
// The built component is discarded; its inputs — and, for flushes, nothing —
// remain in place, which is exactly the on-disk state a real crash leaves.
var ErrStaleInstall = errors.New("lsm: install abandoned by a concurrent reset")

// Flush freezes the memory component, bulk-loads it into a new disk
// component stamped with the given epoch, and installs it as the newest
// component. It returns ErrEmptyFlush when there is nothing to flush.
func (t *Tree) Flush(epoch uint64) (*Component, error) {
	frozen, gen, ok := t.Freeze()
	if !ok {
		return nil, ErrEmptyFlush
	}
	comp, err := t.BuildFrozen(frozen, epoch)
	if err != nil {
		t.dropFrozen(frozen)
		return nil, err
	}
	if err := t.InstallFlushed(frozen, comp, gen); err != nil {
		return nil, err
	}
	return comp, nil
}

// Freeze swaps the live memory component for a fresh one and appends the old
// one to the frozen queue, where it stays readable until InstallFlushed. It
// reports ok=false (and freezes nothing) when the memory component is empty.
// The returned generation must be passed to InstallFlushed; it detects
// crashes between freeze and install.
func (t *Tree) Freeze() (frozen *memtable.Table, gen uint64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.mem
	if old.Len() == 0 {
		return nil, t.installGen, false
	}
	t.gen++
	t.mem = memtable.New(t.opts.Seed + t.gen)
	t.flushing = append(t.flushing, old)
	return old, t.installGen, true
}

// BuildFrozen bulk-loads a frozen memory component into a new disk component
// stamped with the given epoch. It does not install the component; pair it
// with InstallFlushed.
func (t *Tree) BuildFrozen(frozen *memtable.Table, epoch uint64) (*Component, error) {
	return t.buildFromMemtableOn(t.opts.Store, frozen, epoch)
}

// BuildFrozenOn is BuildFrozen with the build I/O charged to the given
// store view (the background maintenance lane). The built component's
// reader is rebound to the tree's foreground store before it is returned,
// so queries against the installed component charge the foreground lane.
func (t *Tree) BuildFrozenOn(store *storage.Store, frozen *memtable.Table, epoch uint64) (*Component, error) {
	if store == nil {
		store = t.opts.Store
	}
	return t.buildFromMemtableOn(store, frozen, epoch)
}

// InstallFlushed atomically appends comp as the newest disk component and
// retires its frozen source memtable. With a stale generation (the tree was
// reset since Freeze) the install is abandoned with ErrStaleInstall: the
// frozen memtable is already gone and the built component is discarded.
func (t *Tree) InstallFlushed(frozen *memtable.Table, comp *Component, gen uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if gen != t.installGen {
		return ErrStaleInstall
	}
	t.disk = append(t.disk, comp)
	t.removeFrozenLocked(frozen)
	return nil
}

// dropFrozen removes a frozen memtable whose build failed, so the queue does
// not grow without bound; the tree is considered wedged by the caller.
func (t *Tree) dropFrozen(frozen *memtable.Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.removeFrozenLocked(frozen)
}

func (t *Tree) removeFrozenLocked(frozen *memtable.Table) {
	for i, m := range t.flushing {
		if m == frozen {
			t.flushing = append(t.flushing[:i:i], t.flushing[i+1:]...)
			return
		}
	}
}

// InstallGen returns the current install generation (captured by background
// maintenance jobs before building, checked again at install).
func (t *Tree) InstallGen() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.installGen
}

func (t *Tree) buildFromMemtable(mem *memtable.Table, epoch uint64) (*Component, error) {
	return t.buildFromMemtableOn(t.opts.Store, mem, epoch)
}

func (t *Tree) buildFromMemtableOn(store *storage.Store, mem *memtable.Table, epoch uint64) (*Component, error) {
	n := mem.Len()
	b := btree.NewBuilder(store)
	filter, addToFilter := newFilter(t.opts, n)
	it := mem.NewIterator(nil, nil)
	var payload []byte
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		payload = kv.AppendPayload(payload[:0], e)
		if err := b.Add(e.Key, payload); err != nil {
			b.Abort()
			return nil, err
		}
		if addToFilter != nil {
			addToFilter(e.Key)
		}
	}
	reader, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if store != t.opts.Store {
		reader.Rebind(t.opts.Store)
	}
	minTS, maxTS := mem.ID()
	comp := &Component{
		ID:       ID{MinTS: minTS, MaxTS: maxTS},
		EpochMin: epoch,
		EpochMax: epoch,
		BTree:    reader,
		Bloom:    filter,
		// A fresh component starts repaired up to its own maxTS (Fig 6):
		// obsolescence among entries of one memory-component lifetime is
		// already cleaned by the Section 4.2 local anti-matter
		// optimization, so only strictly newer components can invalidate
		// its entries.
		RepairedTS: maxTS,
	}
	if fmin, fmax, ok := mem.Filter(); ok {
		comp.FilterMin, comp.FilterMax, comp.HasFilter = fmin, fmax, true
	}
	if t.opts.MutableBitmaps {
		comp.Valid = bitmap.NewMutable(reader.NumEntries())
	}
	return comp, nil
}

// ErrRunNotFound reports an identity-based replacement whose input run is no
// longer contiguous in the component list (another maintenance operation
// replaced one of the inputs first).
var ErrRunNotFound = errors.New("lsm: component run not found")

// ReplaceRun atomically replaces the contiguous run of components identified
// by inputs (by identity, not index) with newComp. Locating the run at
// install time tolerates components appended by concurrent flush installs;
// with a stale generation the replacement is abandoned with ErrStaleInstall.
// Retired components' files are intentionally left on the simulated disk:
// concurrent readers may still hold snapshots of the old component list (a
// production engine would reference-count components; the simulation simply
// never reuses file IDs, so stale reads stay safe and retired files are
// reclaimed when the whole store is garbage collected).
func (t *Tree) ReplaceRun(inputs []*Component, newComp *Component, gen uint64) error {
	if len(inputs) == 0 {
		return ErrBadMergeRange
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if gen != t.installGen {
		return ErrStaleInstall
	}
	lo := -1
	for i, c := range t.disk {
		if c == inputs[0] {
			lo = i
			break
		}
	}
	if lo < 0 || lo+len(inputs) > len(t.disk) {
		return ErrRunNotFound
	}
	for i, in := range inputs {
		if t.disk[lo+i] != in {
			return ErrRunNotFound
		}
	}
	var repl []*Component
	repl = append(repl, t.disk[:lo]...)
	if newComp != nil {
		repl = append(repl, newComp)
	}
	repl = append(repl, t.disk[lo+len(inputs):]...)
	t.disk = repl
	return nil
}

// SetObsolete installs the immutable repair bitmap and repair watermark on a
// component (standalone repair, Section 4.4).
func (t *Tree) SetObsolete(c *Component, bm *bitmap.Immutable, repairedTS int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c.Obsolete = bm
	c.RepairedTS = repairedTS
}
