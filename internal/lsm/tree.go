package lsm

import (
	"errors"
	"sync"

	"repro/internal/bitmap"
	"repro/internal/bloom"
	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/memtable"
	"repro/internal/metrics"
	"repro/internal/storage"
)

// Options configures one LSM-tree index.
type Options struct {
	// Name labels the tree in errors and stats.
	Name string
	// Store is the shared storage handle (disk + buffer cache).
	Store *storage.Store
	// BloomFPR, when positive, attaches a Bloom filter with this target
	// false-positive rate to every disk component (the paper uses 1%).
	BloomFPR float64
	// BlockedBloom selects the cache-friendly blocked variant (Section 3.2).
	BlockedBloom bool
	// FilterExtract extracts the range-filter key from an entry, or reports
	// false when the entry carries none (anti-matter). Nil disables
	// recomputing filters at merge time.
	FilterExtract func(e kv.Entry) (int64, bool)
	// MutableBitmaps attaches a mutable validity bitmap to every disk
	// component (the Mutable-bitmap strategy, Section 5).
	MutableBitmaps bool
	// Seed makes memtable shapes deterministic.
	Seed int64
}

// Tree is one LSM-tree index. All methods are safe for concurrent use.
type Tree struct {
	opts Options
	env  *metrics.Env

	mu   sync.RWMutex
	mem  *memtable.Table
	disk []*Component // oldest -> newest
	gen  int64
	// flushing holds the frozen memory component while a flush builds its
	// disk component, keeping its entries visible to concurrent readers
	// during the build window (writers are drained during flushes, readers
	// are not).
	flushing *memtable.Table
}

// New creates an empty LSM-tree.
func New(opts Options) *Tree {
	t := &Tree{opts: opts, env: opts.Store.Env()}
	t.mem = memtable.New(opts.Seed)
	return t
}

// Name returns the tree's label.
func (t *Tree) Name() string { return t.opts.Name }

// Env returns the tree's metrics environment.
func (t *Tree) Env() *metrics.Env { return t.env }

// Options returns the tree's configuration.
func (t *Tree) Options() Options { return t.opts }

// Mem returns the current memory component.
func (t *Tree) Mem() *memtable.Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem
}

// Components returns a snapshot of the disk components, oldest to newest.
func (t *Tree) Components() []*Component {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Component(nil), t.disk...)
}

// ReadView atomically snapshots the tree's read sources: the live memory
// component, the memory component currently being flushed (nil outside a
// flush), and the disk components oldest to newest. Readers that consult
// mem and components non-atomically can miss the entries of an in-flight
// flush — swapped out of the memtable but not yet installed on disk — so
// every concurrent read path should start from one ReadView.
func (t *Tree) ReadView() (mem, flushing *memtable.Table, comps []*Component) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mem, t.flushing, append([]*Component(nil), t.disk...)
}

// NumDiskComponents returns the current number of disk components.
func (t *Tree) NumDiskComponents() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.disk)
}

// MemBytes returns the memory component's current footprint.
func (t *Tree) MemBytes() int { return t.Mem().Bytes() }

// DiskBytes returns the total size of all disk components.
func (t *Tree) DiskBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total int64
	for _, c := range t.disk {
		total += c.SizeBytes()
	}
	return total
}

// Put inserts an entry (possibly anti-matter) into the memory component.
func (t *Tree) Put(e kv.Entry) {
	t.env.ChargeMemtable()
	t.Mem().Put(e)
}

// WidenMemFilter widens the memory component's range filter (strategy-
// dependent; see memtable.WidenFilter).
func (t *Tree) WidenMemFilter(v int64) { t.Mem().WidenFilter(v) }

// Get returns the newest visible version of key, reconciling the memory
// component and all disk components newest-first. Anti-matter and bitmap-
// deleted entries make the key read as absent.
func (t *Tree) Get(key []byte) (kv.Entry, bool, error) {
	e, _, _, found, err := t.getInternal(key, nil)
	return e, found, err
}

// GetWithLocation additionally reports the component holding the winning
// version (nil for the memory component) and the entry's ordinal in it.
// It is used by the Mutable-bitmap strategy's delete path and by component-
// ID propagation. The onlyComponents argument, when non-nil, restricts the
// search to the given disk components (pID pruning).
func (t *Tree) GetWithLocation(key []byte, onlyComponents []*Component) (kv.Entry, *Component, int64, bool, error) {
	e, c, ord, found, err := t.getInternal(key, onlyComponents)
	return e, c, ord, found, err
}

func (t *Tree) getInternal(key []byte, only []*Component) (kv.Entry, *Component, int64, bool, error) {
	t.env.Counters.PointLookups.Add(1)
	comps := only
	if comps == nil {
		mem, flushing, viewComps := t.ReadView()
		t.env.ChargeMemtable()
		if e, ok := mem.Get(key); ok {
			if e.Anti {
				return kv.Entry{}, nil, 0, false, nil
			}
			return e, nil, 0, true, nil
		}
		if flushing != nil {
			t.env.ChargeMemtable()
			if e, ok := flushing.Get(key); ok {
				if e.Anti {
					return kv.Entry{}, nil, 0, false, nil
				}
				return e, nil, 0, true, nil
			}
		}
		comps = viewComps
	}
	for i := len(comps) - 1; i >= 0; i-- {
		c := comps[i]
		if !c.MayContain(t.env, key) {
			continue
		}
		e, ord, found, err := c.BTree.Get(key)
		if err != nil {
			return kv.Entry{}, nil, 0, false, err
		}
		if !found {
			continue
		}
		if !c.entryVisible(ord) {
			// Deleted through a bitmap: every older version is deleted
			// too (see DESIGN.md invariants), so keep searching only to
			// honor Obsolete-bitmap skips, where older entries may win.
			if c.Valid.IsSet(ord) {
				return kv.Entry{}, nil, 0, false, nil
			}
			continue
		}
		if e.Anti {
			return kv.Entry{}, nil, 0, false, nil
		}
		return e, c, ord, true, nil
	}
	return kv.Entry{}, nil, 0, false, nil
}

// ResetMem discards the memory component (crash simulation: the no-steal
// policy guarantees disk components never hold uncommitted data, so losing
// memory state is exactly what a failure does).
func (t *Tree) ResetMem() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gen++
	t.mem = memtable.New(t.opts.Seed + t.gen)
}

// ErrEmptyFlush reports a flush of an empty memory component.
var ErrEmptyFlush = errors.New("lsm: empty memory component")

// Flush freezes the memory component, bulk-loads it into a new disk
// component stamped with the given epoch, and installs it as the newest
// component. It returns ErrEmptyFlush when there is nothing to flush.
func (t *Tree) Flush(epoch uint64) (*Component, error) {
	t.mu.Lock()
	old := t.mem
	if old.Len() == 0 {
		t.mu.Unlock()
		return nil, ErrEmptyFlush
	}
	t.gen++
	t.mem = memtable.New(t.opts.Seed + t.gen)
	// Keep the frozen memtable readable until its component is installed.
	t.flushing = old
	t.mu.Unlock()

	comp, err := t.buildFromMemtable(old, epoch)
	if err != nil {
		t.mu.Lock()
		t.flushing = nil
		t.mu.Unlock()
		return nil, err
	}
	t.mu.Lock()
	t.disk = append(t.disk, comp)
	t.flushing = nil
	t.mu.Unlock()
	return comp, nil
}

func (t *Tree) buildFromMemtable(mem *memtable.Table, epoch uint64) (*Component, error) {
	n := mem.Len()
	b := btree.NewBuilder(t.opts.Store)
	var filter bloom.Filter
	var addToFilter func([]byte)
	if t.opts.BloomFPR > 0 {
		if t.opts.BlockedBloom {
			f := bloom.NewBlockedFPR(n, t.opts.BloomFPR)
			filter, addToFilter = f, f.Add
		} else {
			f := bloom.NewStandardFPR(n, t.opts.BloomFPR)
			filter, addToFilter = f, f.Add
		}
	}
	it := mem.NewIterator(nil, nil)
	var payload []byte
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		payload = kv.AppendPayload(payload[:0], e)
		if err := b.Add(e.Key, payload); err != nil {
			b.Abort()
			return nil, err
		}
		if addToFilter != nil {
			addToFilter(e.Key)
		}
	}
	reader, err := b.Finish()
	if err != nil {
		return nil, err
	}
	minTS, maxTS := mem.ID()
	comp := &Component{
		ID:       ID{MinTS: minTS, MaxTS: maxTS},
		EpochMin: epoch,
		EpochMax: epoch,
		BTree:    reader,
		Bloom:    filter,
		// A fresh component starts repaired up to its own maxTS (Fig 6):
		// obsolescence among entries of one memory-component lifetime is
		// already cleaned by the Section 4.2 local anti-matter
		// optimization, so only strictly newer components can invalidate
		// its entries.
		RepairedTS: maxTS,
	}
	if fmin, fmax, ok := mem.Filter(); ok {
		comp.FilterMin, comp.FilterMax, comp.HasFilter = fmin, fmax, true
	}
	if t.opts.MutableBitmaps {
		comp.Valid = bitmap.NewMutable(reader.NumEntries())
	}
	return comp, nil
}

// ReplaceComponents atomically replaces the contiguous run disk[lo:hi] with
// newComp (which may be nil to just drop them). Retired components' files
// are intentionally left on the simulated disk: concurrent readers may
// still hold snapshots of the old component list (a production engine would
// reference-count components; the simulation simply never reuses file IDs,
// so stale reads stay safe and retired files are reclaimed when the whole
// store is garbage collected).
func (t *Tree) ReplaceComponents(lo, hi int, newComp *Component) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if lo < 0 || hi > len(t.disk) || lo >= hi {
		return errors.New("lsm: bad component range")
	}
	var repl []*Component
	repl = append(repl, t.disk[:lo]...)
	if newComp != nil {
		repl = append(repl, newComp)
	}
	repl = append(repl, t.disk[hi:]...)
	t.disk = repl
	return nil
}

// SetObsolete installs the immutable repair bitmap and repair watermark on a
// component (standalone repair, Section 4.4).
func (t *Tree) SetObsolete(c *Component, bm *bitmap.Immutable, repairedTS int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c.Obsolete = bm
	c.RepairedTS = repairedTS
}
