// Package lsm implements the LSM-tree underlying every index in the storage
// architecture of Section 3: a memory component (skiplist) plus a sequence
// of immutable disk components, each a bulk-loaded B+-tree with an optional
// Bloom filter on its keys, an optional range filter on a secondary filter
// key, and the per-component auxiliary state the paper's strategies need
// (repairedTS, immutable repair bitmaps, mutable validity bitmaps, deleted-
// key B+-trees). Merge scheduling is pluggable (tiering / leveling /
// correlated, Section 2.1 and Section 4.4).
package lsm

import (
	"sync/atomic"
	"time"

	"repro/internal/bitmap"
	"repro/internal/bloom"
	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/metrics"
)

// ID identifies a component by the (minTS, maxTS) timestamp range of the
// entries it holds, as in Figure 1. Timestamps come from the dataset's
// node-local ingestion clock.
type ID struct {
	MinTS int64
	MaxTS int64
}

// Overlaps reports whether two component ID ranges intersect.
func (id ID) Overlaps(other ID) bool {
	return id.MinTS <= other.MaxTS && other.MinTS <= id.MaxTS
}

// Component is one immutable disk component.
type Component struct {
	ID ID
	// Epoch range: flush epochs covered by this component. Flush produces
	// (e,e); merging components produces the union. The correlated merge
	// policy aligns components across a dataset's indexes by epoch.
	EpochMin, EpochMax uint64

	// BTree organizes the component's entries.
	BTree *btree.Reader
	// Bloom, when present, filters point lookups on the component's keys.
	Bloom bloom.Filter

	// Range filter on the dataset's filter key (Section 3): [FilterMin,
	// FilterMax] covers every record the component's entries may affect.
	FilterMin, FilterMax int64
	HasFilter            bool

	// RepairedTS is the repair watermark of a secondary-index component
	// (Section 4.4): entries have been validated against all primary-key-
	// index components with maxTS <= RepairedTS.
	RepairedTS int64

	// Obsolete is the immutable bitmap produced by index repair (Fig 7):
	// bit=1 entries are invalid and are dropped at the next merge.
	Obsolete *bitmap.Immutable

	// cracked is an optional mutable bitmap filled opportunistically by
	// queries that discover invalid entries during Timestamp validation —
	// the paper's "let queries drive the maintenance of auxiliary
	// structures" future-work direction (Section 7, after database
	// cracking). Entries marked here are skipped by later queries and
	// physically removed at the next merge, exactly like Obsolete marks.
	// Created lazily on first Crack; read through an atomic pointer.
	cracked atomic.Pointer[bitmap.Mutable]

	// Valid is the mutable validity bitmap of the Mutable-bitmap strategy
	// (Section 5): bit=1 entries are deleted. Shared between the primary
	// index component and its primary-key-index sibling.
	Valid *bitmap.Mutable

	// DeletedKeys is the deleted-key B+-tree of the AsterixDB baseline
	// strategy (Section 4.1): primary keys deleted during this component's
	// in-memory lifetime.
	DeletedKeys      *btree.Reader
	DeletedKeysBloom bloom.Filter

	// Building points at the component currently being produced by a
	// flush/merge that includes this component, so Mutable-bitmap writers
	// can forward deletes (Figs 10 and 11). Managed by the dataset layer.
	Building *BuildTarget
}

// BuildTarget is the handle writers use to forward deletes into a component
// under construction (Section 5.3). Exactly one of the two concurrency-
// control methods populates its fields.
type BuildTarget struct {
	// NewValid is the mutable bitmap of the new component, sized on
	// completion of the build; writers consult ScannedKey (Lock method)
	// or append to SideFile (Side-file method).
	mu         chan struct{} // 1-buffered mutex protecting ScannedKey/ordinals
	ScannedKey []byte
	// ordinals maps primary key -> ordinal in the new component, filled in
	// as the builder copies entries, so forwarded deletes can set bits.
	ordinals map[string]int64
	// NewValid is the new component's bitmap (Lock method sets bits here).
	NewValid *bitmap.Mutable
	// pending holds ordinals of deletes forwarded before the new
	// component's bitmap existed; applied by Publish.
	pending []int64
	// SideFile buffers deletes for the Side-file method; nil under Lock.
	SideFile *bitmap.SideFile
}

// NewBuildTarget creates an empty build handle.
func NewBuildTarget(sideFile bool) *BuildTarget {
	bt := &BuildTarget{
		mu:       make(chan struct{}, 1),
		ordinals: make(map[string]int64),
	}
	if sideFile {
		bt.SideFile = bitmap.NewSideFile()
	}
	return bt
}

func (bt *BuildTarget) lock()   { bt.mu <- struct{}{} }
func (bt *BuildTarget) unlock() { <-bt.mu }

// RecordCopied notes that key was copied to the new component at ordinal.
func (bt *BuildTarget) RecordCopied(key []byte, ordinal int64) {
	bt.lock()
	bt.ScannedKey = append(bt.ScannedKey[:0], key...)
	bt.ordinals[string(key)] = ordinal
	bt.unlock()
}

// ForwardDelete applies a delete of key to the new component if the builder
// has already passed it (Lock method, Fig 10 lines 6-7). It reports whether
// the delete was applied to the new component.
func (bt *BuildTarget) ForwardDelete(key []byte) bool {
	bt.lock()
	defer bt.unlock()
	if bt.ScannedKey == nil || kv.Compare(key, bt.ScannedKey) > 0 {
		return false // builder has not reached the key yet
	}
	ord, ok := bt.ordinals[string(key)]
	if !ok {
		return false
	}
	if bt.NewValid == nil {
		bt.pending = append(bt.pending, ord)
		return true
	}
	bt.NewValid.Set(ord)
	return true
}

// OrdinalOf returns the new-component ordinal of key, if copied.
func (bt *BuildTarget) OrdinalOf(key []byte) (int64, bool) {
	bt.lock()
	defer bt.unlock()
	ord, ok := bt.ordinals[string(key)]
	return ord, ok
}

// NumEntries returns the number of entries in the component.
func (c *Component) NumEntries() int64 { return c.BTree.NumEntries() }

// SizeBytes returns the on-disk size of the component.
func (c *Component) SizeBytes() int64 { return c.BTree.SizeBytes() }

// MayContain consults the component's Bloom filter (when present), charging
// the cost model for the hash and the cache lines touched.
func (c *Component) MayContain(env *metrics.Env, key []byte) bool {
	if c.Bloom == nil {
		return true
	}
	env.Counters.BloomTests.Add(1)
	env.Clock.Advance(env.CPU.Hash)
	ok, lines := c.Bloom.MayContain(key)
	env.Clock.Advance(time.Duration(lines) * env.CPU.CacheLineMiss)
	switch b := c.Bloom.(type) {
	case *bloom.Blocked:
		env.Clock.Advance(time.Duration(b.K()-1) * env.CPU.ProbeInBlock)
	case *bloom.V2:
		// Same single-cache-line shape as Blocked: the in-block word
		// probes after the first are charged at register speed.
		env.Clock.Advance(time.Duration(b.K()-1) * env.CPU.ProbeInBlock)
	}
	if !ok {
		env.Counters.BloomNegatives.Add(1)
	}
	return ok
}

// FilterDisjoint reports whether the component's range filter proves the
// component holds nothing in [lo, hi]. Components without a filter are
// never pruned.
func (c *Component) FilterDisjoint(lo, hi int64) bool {
	if !c.HasFilter {
		return false
	}
	return c.FilterMax < lo || c.FilterMin > hi
}

// entryVisible reports whether the entry at ordinal is visible to queries:
// not marked obsolete by repair, not cracked out by a query, and not
// deleted via the mutable bitmap.
func (c *Component) entryVisible(ordinal int64) bool {
	if c.Obsolete.IsSet(ordinal) {
		return false
	}
	if c.cracked.Load().IsSet(ordinal) {
		return false
	}
	if c.Valid.IsSet(ordinal) {
		return false
	}
	return true
}

// Crack marks the entry at ordinal invalid, creating the cracked bitmap on
// first use. Marking is monotone (0 -> 1 only) and idempotent, so no
// coordination with readers is needed: a mark may be missed by an
// in-flight query, which merely re-validates the entry, never mis-answers.
func (c *Component) Crack(ordinal int64) {
	bm := c.cracked.Load()
	if bm == nil {
		fresh := bitmap.NewMutable(c.NumEntries())
		if !c.cracked.CompareAndSwap(nil, fresh) {
			bm = c.cracked.Load()
		} else {
			bm = fresh
		}
	}
	bm.Set(ordinal)
}

// CrackedCount returns the number of query-cracked entries.
func (c *Component) CrackedCount() int64 { return c.cracked.Load().Count() }
