package lsm

import (
	"container/heap"

	"repro/internal/bitmap"
	"repro/internal/kv"
	"repro/internal/memtable"
	"repro/internal/storage"
)

// source is one input stream to a merge iterator, tagged with a recency
// rank: larger rank = newer component, so entries from higher ranks win
// reconciliation of identical keys (Section 2.1).
type source struct {
	rank int
	next func() (kv.Entry, int64, bool, error) // entry, ordinal, ok

	cur     kv.Entry
	curOrd  int64
	curComp *Component // nil for memory component
	valid   bool
	err     error
}

func (s *source) advance() {
	e, ord, ok, err := s.next()
	if err != nil {
		s.err = err
		s.valid = false
		return
	}
	s.cur, s.curOrd, s.valid = e, ord, ok
}

// sourceHeap orders sources by (key asc, rank desc) so that for equal keys
// the newest source surfaces first.
type sourceHeap []*source

func (h sourceHeap) Len() int { return len(h) }
func (h sourceHeap) Less(i, j int) bool {
	c := kv.Compare(h[i].cur.Key, h[j].cur.Key)
	if c != 0 {
		return c < 0
	}
	return h[i].rank > h[j].rank
}
func (h sourceHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sourceHeap) Push(x interface{}) { *h = append(*h, x.(*source)) }
func (h *sourceHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// MergedItem is one reconciled entry produced by a merged iterator.
type MergedItem struct {
	Entry kv.Entry
	// Comp is the component the winning version came from (nil = memory).
	Comp *Component
	// Ordinal is the entry's position within Comp.
	Ordinal int64
}

// MergedIterator reconciles entries with identical keys across components:
// only the version from the newest source is emitted. With hideAnti set,
// winning anti-matter entries (deletes) are suppressed (query scans); merge
// scans keep them so tombstones survive partial merges.
type MergedIterator struct {
	h        sourceHeap
	hideAnti bool
	// skipInvisible drops entries whose bitmap bits mark them obsolete or
	// deleted before reconciliation (query scans and repair merges).
	skipInvisible bool
	// noReconcile emits all versions of duplicate keys.
	noReconcile bool
}

// IterOptions configures a merged iterator over tree components.
type IterOptions struct {
	Lo, Hi []byte // key range [lo, hi); nil = unbounded
	// Components to include, oldest to newest. Required.
	Components []*Component
	// Flushing includes memory components frozen by in-flight flushes
	// (oldest to newest) as sources newer than every disk component and
	// older than Mem (see Tree.ReadView).
	Flushing []*memtable.Table
	// Mem includes the given memory component as the newest source.
	Mem *memtable.Table
	// HideAnti suppresses winning anti-matter entries (query mode).
	HideAnti bool
	// SkipInvisible drops bitmap-invalidated entries at the source.
	SkipInvisible bool
	// NoReconcile disables duplicate-key reconciliation: every visible
	// entry from every source is emitted (secondary-index scans under the
	// Validation strategy emit all versions and let validation filter).
	NoReconcile bool
	// Snapshots overrides components' live mutable bitmaps with immutable
	// snapshots for visibility checks (Side-file builds).
	Snapshots map[*Component]*bitmap.Immutable
	// Store, when set, charges the component scans to this store view
	// (the background maintenance I/O lane) instead of the readers' own.
	Store *storage.Store
}

// NewMergedIterator builds a reconciling iterator over the given sources.
func (t *Tree) NewMergedIterator(opts IterOptions) (*MergedIterator, error) {
	mi := &MergedIterator{hideAnti: opts.HideAnti, skipInvisible: opts.SkipInvisible}
	rank := 0
	for _, comp := range opts.Components {
		comp := comp
		reader := comp.BTree
		if opts.Store != nil {
			reader = reader.CloneFor(opts.Store)
		}
		scan, err := reader.NewScan(opts.Lo, opts.Hi)
		if err != nil {
			return nil, err
		}
		snap := opts.Snapshots[comp]
		s := &source{rank: rank, curComp: comp}
		s.next = func() (kv.Entry, int64, bool, error) {
			for {
				e, ord, ok, err := scan.Next()
				if err != nil || !ok {
					return kv.Entry{}, 0, ok, err
				}
				if mi.skipInvisible {
					if snap != nil {
						if snap.IsSet(ord) || comp.Obsolete.IsSet(ord) ||
							comp.cracked.Load().IsSet(ord) {
							continue
						}
					} else if !comp.entryVisible(ord) {
						continue
					}
				}
				return e, ord, true, nil
			}
		}
		s.advance()
		if s.err != nil {
			return nil, s.err
		}
		if s.valid {
			mi.h = append(mi.h, s)
		}
		rank++
	}
	for _, memSrc := range append(append([]*memtable.Table(nil), opts.Flushing...), opts.Mem) {
		if memSrc == nil {
			continue
		}
		it := memSrc.NewIterator(opts.Lo, opts.Hi)
		s := &source{rank: rank}
		s.next = func() (kv.Entry, int64, bool, error) {
			e, ok := it.Next()
			return e, 0, ok, nil
		}
		s.advance()
		if s.valid {
			mi.h = append(mi.h, s)
		}
		rank++
	}
	if opts.NoReconcile {
		mi.noReconcile = true
	}
	heap.Init(&mi.h)
	return mi, nil
}

// Next returns the next reconciled item; ok=false at stream end.
func (mi *MergedIterator) Next() (MergedItem, bool, error) {
	for len(mi.h) > 0 {
		top := mi.h[0]
		if top.err != nil {
			return MergedItem{}, false, top.err
		}
		item := MergedItem{Entry: top.cur, Comp: top.curComp, Ordinal: top.curOrd}
		winKey := item.Entry.Key
		// pop the winner and, unless reconciliation is off, every older
		// version of the same key
		mi.popAdvance()
		if !mi.noReconcile {
			for len(mi.h) > 0 && kv.Compare(mi.h[0].cur.Key, winKey) == 0 {
				if mi.h[0].err != nil {
					return MergedItem{}, false, mi.h[0].err
				}
				mi.popAdvance()
			}
		}
		if mi.hideAnti && item.Entry.Anti {
			continue
		}
		return item, true, nil
	}
	return MergedItem{}, false, nil
}

func (mi *MergedIterator) popAdvance() {
	top := mi.h[0]
	top.advance()
	if top.valid || top.err != nil {
		heap.Fix(&mi.h, 0)
	} else {
		heap.Pop(&mi.h)
	}
}
