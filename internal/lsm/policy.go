package lsm

// MergeCandidate is a proposed merge of the component range [Lo, Hi).
type MergeCandidate struct {
	Lo, Hi int
}

// Policy decides which components to merge given their sizes in bytes,
// ordered oldest to newest.
type Policy interface {
	// Pick returns a merge candidate, or ok=false when no merge is due.
	Pick(sizes []int64) (MergeCandidate, bool)
}

// Tiering is the paper's experimental merge policy (Section 6.1): a
// sequence of components is merged when the total size of the younger
// components exceeds SizeRatio times the size of the oldest component in
// the sequence. Components larger than MaxMergeableBytes are frozen and
// never merged again, simulating the effect of disk components accumulating
// during an experiment period.
type Tiering struct {
	// SizeRatio is 1.2 in all the paper's experiments.
	SizeRatio float64
	// MaxMergeableBytes caps mergeable component size (1 GB in the paper).
	// Zero means no cap.
	MaxMergeableBytes int64
	// MinComponents is the minimum number of components per merge (2).
	MinComponents int
}

// NewTiering returns the paper's configuration for the given cap.
func NewTiering(maxMergeable int64) *Tiering {
	return &Tiering{SizeRatio: 1.2, MaxMergeableBytes: maxMergeable, MinComponents: 2}
}

// Pick implements Policy.
func (p *Tiering) Pick(sizes []int64) (MergeCandidate, bool) {
	minC := p.MinComponents
	if minC < 2 {
		minC = 2
	}
	// Only the suffix of non-frozen components is eligible.
	start := 0
	if p.MaxMergeableBytes > 0 {
		for i := len(sizes) - 1; i >= 0; i-- {
			if sizes[i] > p.MaxMergeableBytes {
				start = i + 1
				break
			}
		}
	}
	// Oldest-first: merge [i, end) when the younger components together
	// outweigh component i by the ratio.
	for i := start; i+minC-1 < len(sizes); i++ {
		var younger int64
		for j := i + 1; j < len(sizes); j++ {
			younger += sizes[j]
		}
		if float64(younger) >= p.SizeRatio*float64(sizes[i]) {
			if p.MaxMergeableBytes > 0 && younger+sizes[i] > p.MaxMergeableBytes {
				continue
			}
			return MergeCandidate{Lo: i, Hi: len(sizes)}, true
		}
	}
	return MergeCandidate{}, false
}

// Leveling maintains one component per level with exponentially growing
// sizes (Section 2.1). Provided for completeness and ablations; the paper's
// experiments all use Tiering.
type Leveling struct {
	// SizeRatio is the target size ratio between adjacent levels.
	SizeRatio float64
}

// Pick implements Policy: the newest two components merge whenever the
// newer one has grown past older/SizeRatio.
func (p *Leveling) Pick(sizes []int64) (MergeCandidate, bool) {
	n := len(sizes)
	if n < 2 {
		return MergeCandidate{}, false
	}
	ratio := p.SizeRatio
	if ratio <= 1 {
		ratio = 10
	}
	for i := n - 2; i >= 0; i-- {
		if float64(sizes[i+1]) >= float64(sizes[i])/ratio {
			return MergeCandidate{Lo: i, Hi: n}, true
		}
	}
	return MergeCandidate{}, false
}

// NoMerge never merges (Validation-without-repair ablations control merge
// timing explicitly).
type NoMerge struct{}

// Pick implements Policy.
func (NoMerge) Pick([]int64) (MergeCandidate, bool) { return MergeCandidate{}, false }
