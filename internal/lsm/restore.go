package lsm

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/bloom"
	"repro/internal/btree"
	"repro/internal/storage"
)

// RestoredComponent is one persisted disk-component image read back from a
// durable device's manifest at reopen time. File contents (the bulk-loaded
// B+-tree pages) live on the device; this struct carries the in-memory
// metadata that the manifest persists alongside them.
type RestoredComponent struct {
	ID                 ID
	EpochMin, EpochMax uint64
	File               storage.FileID
	FilterMin          int64
	FilterMax          int64
	HasFilter          bool
	RepairedTS         int64
	// Obsolete is the persisted repair bitmap (nil when none).
	Obsolete *bitmap.Immutable
	// Valid is the persisted mutable validity bitmap (nil when the tree
	// does not use mutable bitmaps). For primary-key-index siblings the
	// caller shares the primary component's bitmap instead (see
	// Component.Valid's pairing invariant).
	Valid *bitmap.Mutable
	// DeletedKeysFile is the component's deleted-key B+-tree file
	// (DeletedKey strategy); zero when none.
	DeletedKeysFile storage.FileID
	// Bloom is the component's marshalled bloom.V2 filter (nil when the
	// tree does not use v2 filters, or for manifests written before
	// filters were persisted). A missing or corrupt encoding is not an
	// error: Restore falls back to rebuilding the filter by scan.
	Bloom []byte
}

// Restore rebuilds the tree's disk-component list from persisted images,
// oldest to newest: each component's B+-tree reader is reopened on the
// tree's store and its Bloom filter — which lives only in memory — is
// rebuilt by a sequential scan of the component's keys. Restore must run
// before the tree serves traffic; it replaces any existing disk components.
// It returns the installed components in list order so the caller can
// re-link cross-tree shared state (paired validity bitmaps).
func (t *Tree) Restore(images []RestoredComponent) ([]*Component, error) {
	comps := make([]*Component, 0, len(images))
	for _, im := range images {
		reader, err := btree.Open(t.opts.Store, im.File)
		if err != nil {
			return nil, fmt.Errorf("lsm: restore %s component file %d: %w", t.opts.Name, im.File, err)
		}
		c := &Component{
			ID:         im.ID,
			EpochMin:   im.EpochMin,
			EpochMax:   im.EpochMax,
			BTree:      reader,
			FilterMin:  im.FilterMin,
			FilterMax:  im.FilterMax,
			HasFilter:  im.HasFilter,
			RepairedTS: im.RepairedTS,
			Obsolete:   im.Obsolete,
			Valid:      im.Valid,
		}
		if t.opts.MutableBitmaps && c.Valid == nil {
			c.Valid = bitmap.NewMutable(reader.NumEntries())
		}
		if t.opts.BloomFPR > 0 {
			var f bloom.Filter
			if t.opts.BloomV2 && len(im.Bloom) > 0 {
				// Persisted v2 filter: decode instead of scanning. Corrupt
				// bytes degrade to the rebuild path below (self-healing on
				// the next manifest write).
				if v2, err := bloom.UnmarshalV2(im.Bloom); err == nil {
					f = v2
				}
			}
			if f == nil {
				rebuilt, err := rebuildBloom(reader, t.opts)
				if err != nil {
					return nil, err
				}
				f = rebuilt
			}
			c.Bloom = f
		}
		if im.DeletedKeysFile != 0 {
			dk, err := btree.Open(t.opts.Store, im.DeletedKeysFile)
			if err != nil {
				return nil, fmt.Errorf("lsm: restore %s deleted-key file %d: %w", t.opts.Name, im.DeletedKeysFile, err)
			}
			dkBloom, err := rebuildBloomStandard(dk, 0.01)
			if err != nil {
				return nil, err
			}
			c.DeletedKeys = dk
			c.DeletedKeysBloom = dkBloom
		}
		comps = append(comps, c)
	}
	t.mu.Lock()
	t.disk = append([]*Component(nil), comps...)
	t.mu.Unlock()
	return comps, nil
}

// rebuildBloom scans every key of a restored component into a fresh Bloom
// filter of the tree's configured flavor. The cost-model variants live only
// in memory, so this scan is their normal reopen price; v2 trees reach here
// only when the manifest carries no (or a corrupt) persisted filter.
func rebuildBloom(r *btree.Reader, opts Options) (bloom.Filter, error) {
	filter, add := newFilter(opts, int(r.NumEntries()))
	if filter == nil {
		return nil, nil
	}
	if err := scanKeys(r, add); err != nil {
		return nil, err
	}
	return filter, nil
}

// rebuildBloomStandard rebuilds the standard filter of a deleted-key tree.
func rebuildBloomStandard(r *btree.Reader, fpr float64) (bloom.Filter, error) {
	f := bloom.NewStandardFPR(int(r.NumEntries()), fpr)
	if err := scanKeys(r, f.Add); err != nil {
		return nil, err
	}
	return f, nil
}

func scanKeys(r *btree.Reader, add func([]byte)) error {
	scan, err := r.NewScan(nil, nil)
	if err != nil {
		return err
	}
	for {
		e, _, ok, err := scan.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		add(e.Key)
	}
}

// RepairState returns a consistent (Obsolete, RepairedTS) pair for a
// component: SetObsolete installs both under the tree lock, so reading them
// under the same lock can never observe a new bitmap with an old watermark.
// The durable manifest snapshots repair state through this accessor.
func (t *Tree) RepairState(c *Component) (*bitmap.Immutable, int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return c.Obsolete, c.RepairedTS
}
