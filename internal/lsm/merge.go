package lsm

import (
	"errors"

	"repro/internal/bitmap"
	"repro/internal/btree"
	"repro/internal/kv"
	"repro/internal/storage"
)

// MergeSpec describes one merge operation over the contiguous component
// range disk[Lo:Hi) (oldest to newest). The caller installs the result with
// Install (or ReplaceRun) once any post-processing (index repair, bitmap
// catch-up) has finished.
type MergeSpec struct {
	Lo, Hi int
	// DropAnti discards winning anti-matter entries; only safe when the
	// merge includes the tree's oldest component.
	DropAnti bool
	// SkipInvisible drops entries invalidated through Obsolete/Valid
	// bitmaps, physically removing them (Sections 4.4 and 5).
	SkipInvisible bool
	// Snapshots overrides components' live mutable bitmaps with immutable
	// snapshots (Side-file method, Fig 11: the build phase must not see
	// concurrent deletes).
	Snapshots map[*Component]*bitmap.Immutable
	// LockKey, when set, is invoked for every scanned key before its
	// visibility re-check and copy; the returned function releases the
	// lock (Lock method, Fig 10: S-lock per scanned key).
	LockKey func(key []byte) func()
	// Target, when set, lets concurrent writers forward deletes into the
	// component being built (Mutable-bitmap strategy, Section 5.3).
	Target *BuildTarget
	// EntryFilter, when set, may veto entries (deleted-key B+-tree
	// strategy cleanup). Called after visibility checks.
	EntryFilter func(item MergedItem) (keep bool)
	// OnEntry observes every entry added to the new component together
	// with its ordinal position (merge repair streams (pkey, ts, position)
	// to its sorter from here, Fig 7 line 6).
	OnEntry func(e kv.Entry, ordinal int64)
	// Store, when set, charges the merge's I/O (input scans and the new
	// component's build) to this store view — the background maintenance
	// lane. The merged component's reader is rebound to the tree's
	// foreground store before the result is returned.
	Store *storage.Store
}

// MergeResult carries the built component before installation.
type MergeResult struct {
	Component *Component
	// Inputs are the merged components (located by identity at install
	// time, and used for repair accounting).
	Inputs []*Component
	// Lo, Hi echo the merged range.
	Lo, Hi int
	// gen is the install generation captured when the merge began; Install
	// abandons the result when the tree was reset since.
	gen uint64
}

// ErrBadMergeRange reports an invalid component range.
var ErrBadMergeRange = errors.New("lsm: bad merge range")

// Merge builds a new component from the given range. It does not install
// the result; see MergeResult.
func (t *Tree) Merge(spec MergeSpec) (*MergeResult, error) {
	t.mu.RLock()
	if spec.Lo < 0 || spec.Hi > len(t.disk) || spec.Lo >= spec.Hi {
		t.mu.RUnlock()
		return nil, ErrBadMergeRange
	}
	inputs := append([]*Component(nil), t.disk[spec.Lo:spec.Hi]...)
	gen := t.installGen
	t.mu.RUnlock()

	// Expose the build target so concurrent writers can forward deletes.
	if spec.Target != nil {
		for _, c := range inputs {
			c.Building = spec.Target
		}
	}

	var upperBound int64
	for _, c := range inputs {
		upperBound += c.NumEntries()
	}

	buildStore := t.opts.Store
	if spec.Store != nil {
		buildStore = spec.Store
	}
	b := btree.NewBuilder(buildStore)
	filter, addToFilter := newFilter(t.opts, int(upperBound))

	it, err := t.NewMergedIterator(IterOptions{
		Components:    inputs,
		HideAnti:      spec.DropAnti,
		SkipInvisible: spec.SkipInvisible && spec.LockKey == nil,
		Snapshots:     spec.Snapshots,
		Store:         spec.Store,
	})
	if err != nil {
		return nil, err
	}

	var (
		payload    []byte
		ordinal    int64
		hasAnti    bool
		fmin, fmax int64
		hasF       bool
	)
	widen := func(v int64) {
		if !hasF {
			fmin, fmax, hasF = v, v, true
			return
		}
		if v < fmin {
			fmin = v
		}
		if v > fmax {
			fmax = v
		}
	}
	for {
		item, ok, err := it.Next()
		if err != nil {
			b.Abort()
			return nil, err
		}
		if !ok {
			break
		}
		if spec.LockKey != nil {
			unlock := spec.LockKey(item.Entry.Key)
			// Re-check visibility under the lock (Fig 10 line 7): a
			// writer may have deleted the key since the scan peeked.
			if spec.SkipInvisible && item.Comp != nil && !visibleWith(item.Comp, item.Ordinal, spec.Snapshots) {
				unlock()
				continue
			}
			if spec.EntryFilter != nil && !spec.EntryFilter(item) {
				unlock()
				continue
			}
			if err := t.addMergeEntry(b, addToFilter, item, &payload, ordinal, spec, widen, &hasAnti); err != nil {
				unlock()
				b.Abort()
				return nil, err
			}
			unlock()
		} else {
			if spec.EntryFilter != nil && !spec.EntryFilter(item) {
				continue
			}
			if err := t.addMergeEntry(b, addToFilter, item, &payload, ordinal, spec, widen, &hasAnti); err != nil {
				b.Abort()
				return nil, err
			}
		}
		ordinal++
	}

	reader, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if buildStore != t.opts.Store {
		reader.Rebind(t.opts.Store)
	}
	comp := &Component{
		ID:       ID{MinTS: inputs[0].ID.MinTS, MaxTS: inputs[0].ID.MaxTS},
		EpochMin: inputs[0].EpochMin,
		EpochMax: inputs[0].EpochMax,
		BTree:    reader,
		Bloom:    filter,
	}
	comp.RepairedTS = inputs[0].RepairedTS
	for _, c := range inputs {
		// The merged component is only repaired as far as its least-
		// repaired input.
		if c.RepairedTS < comp.RepairedTS {
			comp.RepairedTS = c.RepairedTS
		}
		if c.ID.MinTS >= 0 && (comp.ID.MinTS < 0 || c.ID.MinTS < comp.ID.MinTS) {
			comp.ID.MinTS = c.ID.MinTS
		}
		if c.ID.MaxTS > comp.ID.MaxTS {
			comp.ID.MaxTS = c.ID.MaxTS
		}
		if c.EpochMin < comp.EpochMin {
			comp.EpochMin = c.EpochMin
		}
		if c.EpochMax > comp.EpochMax {
			comp.EpochMax = c.EpochMax
		}
	}
	// Range filter: recomputed from surviving records when possible; any
	// retained anti-matter forces widening to the union of the inputs so
	// queries still observe the deletes (Section 3.1's correctness rule).
	if t.opts.FilterExtract != nil {
		if hasAnti {
			for _, c := range inputs {
				if c.HasFilter {
					widen(c.FilterMin)
					widen(c.FilterMax)
				}
			}
		}
		comp.FilterMin, comp.FilterMax, comp.HasFilter = fmin, fmax, hasF
	} else {
		for _, c := range inputs {
			if c.HasFilter {
				if !comp.HasFilter {
					comp.FilterMin, comp.FilterMax, comp.HasFilter = c.FilterMin, c.FilterMax, true
				} else {
					if c.FilterMin < comp.FilterMin {
						comp.FilterMin = c.FilterMin
					}
					if c.FilterMax > comp.FilterMax {
						comp.FilterMax = c.FilterMax
					}
				}
			}
		}
	}
	if t.opts.MutableBitmaps {
		comp.Valid = bitmap.NewMutable(reader.NumEntries())
	}
	if spec.Target != nil {
		spec.Target.Publish(comp.Valid)
	}
	return &MergeResult{Component: comp, Inputs: inputs, Lo: spec.Lo, Hi: spec.Hi, gen: gen}, nil
}

func (t *Tree) addMergeEntry(b *btree.Builder, addToFilter func([]byte), item MergedItem,
	payload *[]byte, ordinal int64, spec MergeSpec, widen func(int64), hasAnti *bool) error {
	e := item.Entry
	*payload = kv.AppendPayload((*payload)[:0], e)
	if err := b.Add(e.Key, *payload); err != nil {
		return err
	}
	if addToFilter != nil {
		addToFilter(e.Key)
	}
	if e.Anti {
		*hasAnti = true
	} else if t.opts.FilterExtract != nil {
		if v, ok := t.opts.FilterExtract(e); ok {
			widen(v)
		}
	}
	if spec.Target != nil {
		spec.Target.RecordCopied(e.Key, ordinal)
	}
	if spec.OnEntry != nil {
		spec.OnEntry(e, ordinal)
	}
	return nil
}

// visibleWith checks entry visibility honoring snapshot overrides.
func visibleWith(c *Component, ordinal int64, snaps map[*Component]*bitmap.Immutable) bool {
	if c.Obsolete.IsSet(ordinal) || c.cracked.Load().IsSet(ordinal) {
		return false
	}
	if snaps != nil {
		if snap, ok := snaps[c]; ok {
			return !snap.IsSet(ordinal)
		}
	}
	return !c.Valid.IsSet(ordinal)
}

// Install finalizes a merge: replaces the input run with the new component.
// The inputs are located by identity, so disk components appended by a
// concurrent asynchronous flush do not disturb the install; a tree reset
// since the merge began abandons it with ErrStaleInstall. The inputs'
// Building pointers are deliberately left in place: a writer that
// snapshotted the component list just before the install may still forward
// a delete through them, and the published BuildTarget routes it to the new
// component's bitmap (closing the race the paper's "C points to C'" check
// addresses).
func (t *Tree) Install(res *MergeResult) error {
	return t.ReplaceRun(res.Inputs, res.Component, res.gen)
}

// Publish makes the new component's bitmap available to writers and applies
// deletes forwarded before the bitmap existed.
func (bt *BuildTarget) Publish(valid *bitmap.Mutable) {
	bt.lock()
	bt.NewValid = valid
	for _, ord := range bt.pending {
		if valid != nil {
			valid.Set(ord)
		}
	}
	bt.pending = nil
	bt.unlock()
}
