package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/kv"
	"repro/internal/metrics"
	"repro/internal/storage"
)

func newTestTree(t testing.TB, pageSize int, opts func(*Options)) (*Tree, *metrics.Env) {
	t.Helper()
	env := metrics.NopEnv()
	disk := storage.NewDisk(storage.ScaledHDD(pageSize), env)
	store := storage.NewStore(disk, 1<<30, env)
	o := Options{Name: "test", Store: store, BloomFPR: 0.01, Seed: 1}
	if opts != nil {
		opts(&o)
	}
	return New(o), env
}

func key(i int) []byte { return kv.EncodeUint64(uint64(i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%08d", i)) }

func TestMemOnlyGet(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	tr.Put(kv.Entry{Key: key(1), Value: val(1), TS: 1})
	e, found, err := tr.Get(key(1))
	if err != nil || !found || !bytes.Equal(e.Value, val(1)) {
		t.Fatalf("Get: %v %v %v", e, found, err)
	}
	if _, found, _ := tr.Get(key(2)); found {
		t.Fatal("missing key found")
	}
}

func TestFlushAndGet(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	for i := 0; i < 1000; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: val(i), TS: int64(i)})
	}
	comp, err := tr.Flush(1)
	if err != nil {
		t.Fatal(err)
	}
	if comp.NumEntries() != 1000 {
		t.Fatalf("flushed %d entries", comp.NumEntries())
	}
	if comp.ID.MinTS != 0 || comp.ID.MaxTS != 999 {
		t.Fatalf("component ID = %+v", comp.ID)
	}
	if tr.Mem().Len() != 0 {
		t.Fatal("memtable not swapped")
	}
	for i := 0; i < 1000; i++ {
		e, found, err := tr.Get(key(i))
		if err != nil || !found || !bytes.Equal(e.Value, val(i)) {
			t.Fatalf("key %d after flush: %v %v", i, found, err)
		}
	}
	if _, err := tr.Flush(2); err != ErrEmptyFlush {
		t.Fatalf("empty flush error = %v", err)
	}
}

func TestNewerComponentWins(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	tr.Put(kv.Entry{Key: key(1), Value: []byte("old"), TS: 1})
	tr.Flush(1)
	tr.Put(kv.Entry{Key: key(1), Value: []byte("new"), TS: 2})
	tr.Flush(2)
	e, found, _ := tr.Get(key(1))
	if !found || string(e.Value) != "new" {
		t.Fatalf("Get = %v %v", e, found)
	}
	// memory beats disk
	tr.Put(kv.Entry{Key: key(1), Value: []byte("newest"), TS: 3})
	e, _, _ = tr.Get(key(1))
	if string(e.Value) != "newest" {
		t.Fatalf("memory should win: %v", e)
	}
}

func TestAntiMatterHidesKey(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	tr.Put(kv.Entry{Key: key(5), Value: val(5), TS: 1})
	tr.Flush(1)
	tr.Put(kv.Entry{Key: key(5), TS: 2, Anti: true})
	if _, found, _ := tr.Get(key(5)); found {
		t.Fatal("anti-matter in memory should hide the key")
	}
	tr.Flush(2)
	if _, found, _ := tr.Get(key(5)); found {
		t.Fatal("anti-matter on disk should hide the key")
	}
}

func TestMergeReconcilesAndDropsAnti(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	for i := 0; i < 100; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: []byte("v1"), TS: int64(i)})
	}
	tr.Flush(1)
	for i := 50; i < 100; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: []byte("v2"), TS: int64(100 + i)})
	}
	for i := 0; i < 10; i++ {
		tr.Put(kv.Entry{Key: key(i), TS: int64(300 + i), Anti: true})
	}
	tr.Flush(2)

	res, err := tr.Merge(MergeSpec{Lo: 0, Hi: 2, DropAnti: true, SkipInvisible: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Install(res); err != nil {
		t.Fatal(err)
	}
	if tr.NumDiskComponents() != 1 {
		t.Fatalf("components = %d", tr.NumDiskComponents())
	}
	comp := tr.Components()[0]
	// 100 keys - 10 deleted = 90 survivors, tombstones dropped
	if comp.NumEntries() != 90 {
		t.Fatalf("merged entries = %d, want 90", comp.NumEntries())
	}
	for i := 0; i < 10; i++ {
		if _, found, _ := tr.Get(key(i)); found {
			t.Fatalf("deleted key %d visible after merge", i)
		}
	}
	for i := 50; i < 100; i++ {
		e, found, _ := tr.Get(key(i))
		if !found || string(e.Value) != "v2" {
			t.Fatalf("key %d: %v %v", i, e, found)
		}
	}
	if comp.ID.MinTS != 0 || comp.ID.MaxTS != 309 {
		t.Fatalf("merged ID = %+v", comp.ID)
	}
}

func TestMergeKeepsAntiWithoutDrop(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	tr.Put(kv.Entry{Key: key(1), Value: []byte("v"), TS: 1})
	tr.Flush(1)
	tr.Put(kv.Entry{Key: key(1), TS: 2, Anti: true})
	tr.Flush(2)
	tr.Put(kv.Entry{Key: key(2), Value: []byte("x"), TS: 3})
	tr.Flush(3)

	// merge only the two newest components: the tombstone must survive
	res, err := tr.Merge(MergeSpec{Lo: 1, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr.Install(res)
	if _, found, _ := tr.Get(key(1)); found {
		t.Fatal("tombstone lost in partial merge")
	}
	comp := tr.Components()[1]
	if comp.NumEntries() != 2 { // anti(1) + x(2)
		t.Fatalf("entries = %d, want 2", comp.NumEntries())
	}
}

func TestScanReconciled(t *testing.T) {
	tr, _ := newTestTree(t, 1024, nil)
	for i := 0; i < 200; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: []byte("v1"), TS: int64(i)})
	}
	tr.Flush(1)
	for i := 0; i < 200; i += 2 {
		tr.Put(kv.Entry{Key: key(i), Value: []byte("v2"), TS: int64(200 + i)})
	}
	tr.Flush(2)
	for i := 0; i < 50; i++ {
		tr.Put(kv.Entry{Key: key(i), TS: int64(500 + i), Anti: true})
	}

	it, err := tr.NewMergedIterator(IterOptions{
		Components: tr.Components(),
		Mem:        tr.Mem(),
		HideAnti:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		item, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		i := int(kv.DecodeUint64(item.Entry.Key))
		if i < 50 {
			t.Fatalf("deleted key %d leaked", i)
		}
		want := "v1"
		if i%2 == 0 {
			want = "v2"
		}
		if string(item.Entry.Value) != want {
			t.Fatalf("key %d: value %q want %q", i, item.Entry.Value, want)
		}
		seen++
	}
	if seen != 150 {
		t.Fatalf("scan saw %d keys, want 150", seen)
	}
}

func TestMutableBitmapHidesEntries(t *testing.T) {
	tr, _ := newTestTree(t, 1024, func(o *Options) { o.MutableBitmaps = true })
	for i := 0; i < 100; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: val(i), TS: int64(i)})
	}
	tr.Flush(1)
	comp := tr.Components()[0]
	if comp.Valid == nil {
		t.Fatal("mutable bitmap missing")
	}
	_, ord, found, err := comp.BTree.Get(key(7))
	if err != nil || !found {
		t.Fatal("setup failed")
	}
	comp.Valid.Set(ord)
	if _, found, _ := tr.Get(key(7)); found {
		t.Fatal("bitmap-deleted key visible via Get")
	}
	it, _ := tr.NewMergedIterator(IterOptions{Components: tr.Components(), HideAnti: true, SkipInvisible: true})
	for {
		item, ok, _ := it.Next()
		if !ok {
			break
		}
		if kv.DecodeUint64(item.Entry.Key) == 7 {
			t.Fatal("bitmap-deleted key visible via scan")
		}
	}
	// merge physically removes it
	res, err := tr.Merge(MergeSpec{Lo: 0, Hi: 1, DropAnti: true, SkipInvisible: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.Install(res)
	if got := tr.Components()[0].NumEntries(); got != 99 {
		t.Fatalf("entries after merge = %d, want 99", got)
	}
}

func TestRangeFilterFlushAndMerge(t *testing.T) {
	extract := func(e kv.Entry) (int64, bool) {
		if len(e.Value) < 8 {
			return 0, false
		}
		return int64(kv.DecodeUint64(e.Value[:8])), true
	}
	tr, _ := newTestTree(t, 1024, func(o *Options) { o.FilterExtract = extract })
	for i := 0; i < 50; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: kv.EncodeUint64(uint64(2000 + i)), TS: int64(i)})
		tr.WidenMemFilter(int64(2000 + i))
	}
	comp, err := tr.Flush(1)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.HasFilter || comp.FilterMin != 2000 || comp.FilterMax != 2049 {
		t.Fatalf("flush filter = %+v", comp)
	}
	if comp.FilterDisjoint(1000, 1999) != true {
		t.Fatal("disjoint range should prune")
	}
	if comp.FilterDisjoint(2049, 3000) {
		t.Fatal("overlapping range must not prune")
	}

	// merge recomputes the filter from surviving records
	for i := 0; i < 25; i++ {
		tr.Put(kv.Entry{Key: key(i), Value: kv.EncodeUint64(uint64(3000 + i)), TS: int64(100 + i)})
		tr.WidenMemFilter(int64(3000 + i))
	}
	tr.Flush(2)
	res, err := tr.Merge(MergeSpec{Lo: 0, Hi: 2, DropAnti: true, SkipInvisible: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.Install(res)
	m := tr.Components()[0]
	if m.FilterMin != 2025 || m.FilterMax != 3024 {
		t.Fatalf("merged filter = [%d,%d], want [2025,3024]", m.FilterMin, m.FilterMax)
	}
}

func TestTieringPolicy(t *testing.T) {
	p := NewTiering(0)
	if _, ok := p.Pick([]int64{100}); ok {
		t.Fatal("single component must not merge")
	}
	// younger total 100+30 = 130 >= 1.2*100
	if c, ok := p.Pick([]int64{100, 100, 30}); !ok || c.Lo != 0 || c.Hi != 3 {
		t.Fatalf("Pick = %+v %v", c, ok)
	}
	// younger 50 < 1.2*100, but inner pair: 30 >= 1.2*20? no, 30>=24 yes -> [1,3)
	if c, ok := p.Pick([]int64{100, 20, 30}); !ok || c.Lo != 1 || c.Hi != 3 {
		t.Fatalf("Pick = %+v %v", c, ok)
	}
	if _, ok := p.Pick([]int64{100, 10, 2}); ok {
		t.Fatal("no merge due")
	}
	// frozen oversized component excluded
	p2 := NewTiering(150)
	if c, ok := p2.Pick([]int64{1000, 40, 60}); !ok || c.Lo != 1 || c.Hi != 3 {
		t.Fatalf("frozen Pick = %+v %v", c, ok)
	}
	// cap prevents producing an oversized component
	if _, ok := p2.Pick([]int64{100, 130}); ok {
		t.Fatal("merge exceeding cap must be skipped")
	}
}

func TestLevelingPolicy(t *testing.T) {
	p := &Leveling{SizeRatio: 10}
	if _, ok := p.Pick([]int64{1000}); ok {
		t.Fatal("single component")
	}
	if c, ok := p.Pick([]int64{1000, 150}); !ok || c.Lo != 0 || c.Hi != 2 {
		t.Fatalf("Pick = %+v %v", c, ok)
	}
	if _, ok := p.Pick([]int64{1000, 50}); ok {
		t.Fatal("below ratio")
	}
}

func TestGetAgainstModelWithFlushesAndMerges(t *testing.T) {
	tr, _ := newTestTree(t, 2048, nil)
	rng := rand.New(rand.NewSource(23))
	model := map[uint64]string{}
	ts := int64(0)
	policy := NewTiering(0)
	for round := 0; round < 30; round++ {
		for op := 0; op < 300; op++ {
			k := uint64(rng.Intn(2000))
			ts++
			if rng.Intn(5) == 0 {
				delete(model, k)
				tr.Put(kv.Entry{Key: kv.EncodeUint64(k), TS: ts, Anti: true})
			} else {
				v := fmt.Sprintf("v%d", ts)
				model[k] = v
				tr.Put(kv.Entry{Key: kv.EncodeUint64(k), Value: []byte(v), TS: ts})
			}
		}
		if _, err := tr.Flush(uint64(round)); err != nil {
			t.Fatal(err)
		}
		sizes := make([]int64, 0, tr.NumDiskComponents())
		for _, c := range tr.Components() {
			sizes = append(sizes, c.SizeBytes())
		}
		if cand, ok := policy.Pick(sizes); ok {
			res, err := tr.Merge(MergeSpec{
				Lo: cand.Lo, Hi: cand.Hi,
				DropAnti:      cand.Lo == 0,
				SkipInvisible: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			tr.Install(res)
		}
	}
	for k := uint64(0); k < 2000; k++ {
		e, found, err := tr.Get(kv.EncodeUint64(k))
		if err != nil {
			t.Fatal(err)
		}
		want, ok := model[k]
		if found != ok {
			t.Fatalf("key %d: found=%v want=%v", k, found, ok)
		}
		if found && string(e.Value) != want {
			t.Fatalf("key %d: value %q want %q", k, e.Value, want)
		}
	}
}
