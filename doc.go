// Package repro is the root of a from-scratch Go reproduction of Luo &
// Carey, "Efficient Data Ingestion and Query Processing for LSM-Based
// Storage Systems" (PVLDB 12(5), 2019).
//
// The public API lives in package lsmstore; the engine internals live under
// internal/ (see README.md for the map). This root package holds only the
// benchmark harness (bench_test.go) that regenerates every figure of the
// paper's evaluation via internal/experiments.
package repro
