// Package repro is the root of a from-scratch Go reproduction of Luo &
// Carey, "Efficient Data Ingestion and Query Processing for LSM-Based
// Storage Systems" (PVLDB 12(5), 2019).
//
// The public API lives in package lsmstore; the engine internals live under
// internal/ (see README.md for the map). Beyond the paper, the store runs
// in hash-sharded mode (lsmstore.Options.Shards, internal/shard): N
// independent dataset partitions ingest batches concurrently via
// ApplyBatch while queries fan out and merge, scaling the paper's single-
// partition engine toward production traffic. Background maintenance
// (lsmstore.Options.MaintenanceWorkers, internal/maint) moves flush builds
// and policy merges off the write path onto a bounded worker pool, with
// backpressure and a two-lane cost model (ingest vs maintenance virtual
// time).
//
// This root package holds the benchmark harness: bench_test.go regenerates
// every figure of the paper's evaluation via internal/experiments, and
// shard_bench_test.go sweeps shard counts over the same ingest workload
// (BenchmarkShardedIngest with sync and maint=N variants,
// TestShardedIngestScaling, TestAsyncIngestThroughput).
package repro
